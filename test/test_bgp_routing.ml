open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen
module Bgp = Routing.Bgp

let world = lazy (Gen.generate Topogen.Scenario.tiny)

let bgp_of w =
  Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
    ~selective:w.Gen.selective

let test_all_prefixes_reachable_from_host () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  List.iter
    (fun p ->
      if not (Bgp.is_origin bgp w.host_asn p) then
        Alcotest.(check bool)
          (Printf.sprintf "host routes to %s" (Prefix.to_string p))
          true
          (Bgp.route bgp w.host_asn p <> None))
    (Bgp.prefixes bgp)

let test_route_class_preferences () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  let truth = Gen.host_neighbor_truth w in
  (* Customer prefixes must be reached via customer routes, and peer
     prefixes (CDNs) via peer routes, never via providers. *)
  Asn.Map.iter
    (fun asn kind ->
      let node = Net.as_node w.net asn in
      List.iter
        (fun p ->
          match Bgp.route bgp w.host_asn p with
          | None -> Alcotest.failf "no route to %s" (Prefix.to_string p)
          | Some r -> (
            match kind with
            | `Customer ->
              Alcotest.(check bool)
                (Printf.sprintf "AS%d prefix via customer route" asn)
                true (r.Bgp.cls = Bgp.Cust)
            | `Peer ->
              Alcotest.(check bool)
                (Printf.sprintf "AS%d prefix via customer or peer route" asn)
                true
                (r.Bgp.cls = Bgp.Peer || r.Bgp.cls = Bgp.Cust)
            | `Provider -> ()))
        node.Net.prefixes)
    truth

let test_valley_free_paths () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  let rels = w.rels_truth in
  let check_path path =
    (* Once the path goes downhill (p2c) or flat (p2p), it must never go
       uphill (c2p) again, and at most one peer link is crossed. *)
    let links = Bgpdata.As_path.links path in
    let rec ok state peers = function
      | [] -> peers <= 1
      | (a, bb) :: rest -> (
        match Bgpdata.As_rel.rel rels ~of_:a ~with_:bb with
        | Some Bgpdata.As_rel.Customer -> ok `Down peers rest
        | Some Bgpdata.As_rel.Peer -> if state = `Down then false else ok `Down (peers + 1) rest
        | Some Bgpdata.As_rel.Provider -> state = `Up && ok `Up peers rest
        | None -> false)
    in
    (* Paths here run from the querying AS toward the origin, i.e. in the
       reverse of announcement flow: the first segment descends the
       querying AS's customer cone, flat or up segments come last. So
       validate the reversed path as an announcement path. *)
    let rev = List.rev path in
    let rev_links = Bgpdata.As_path.links rev in
    let rec ok_up state peers = function
      | [] -> peers <= 1
      | (a, bb) :: rest -> (
        match Bgpdata.As_rel.rel rels ~of_:a ~with_:bb with
        | Some Bgpdata.As_rel.Provider -> state = `Up && ok_up `Up peers rest
        | Some Bgpdata.As_rel.Peer ->
          if state = `Up then ok_up `Down (peers + 1) rest else false
        | Some Bgpdata.As_rel.Customer -> ok_up `Down peers rest
        | None -> false)
    in
    ignore ok;
    ignore links;
    ok_up `Up 0 rev_links
  in
  let bad = ref 0 and total = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun c ->
          match Bgp.as_path bgp c p with
          | None -> ()
          | Some path ->
            incr total;
            if not (check_path path) then incr bad)
        w.collectors)
    (Bgp.prefixes bgp);
  Alcotest.(check int) "no valley violations" 0 !bad;
  Alcotest.(check bool) "paths checked" true (!total > 200)

let test_paths_end_at_origin () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  List.iter
    (fun p ->
      match Bgp.as_path bgp w.host_asn p with
      | None -> ()
      | Some path ->
        let origin = Option.get (Bgpdata.As_path.origin path) in
        Alcotest.(check bool)
          (Printf.sprintf "path to %s ends at an origin" (Prefix.to_string p))
          true
          (Asn.Set.mem origin (Bgp.origins bgp p)))
    (Bgp.prefixes bgp)

let test_collector_view_parses () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  let rib = Bgp.collector_view bgp w.collectors in
  Alcotest.(check bool) "rib non-empty" true (Bgpdata.Rib.cardinal rib > 50);
  match Bgpdata.Rib.of_lines (Bgpdata.Rib.to_lines rib) with
  | Error e -> Alcotest.fail e
  | Ok rib' -> Alcotest.(check int) "roundtrip" (Bgpdata.Rib.cardinal rib) (Bgpdata.Rib.cardinal rib')

let test_hidden_peers_invisible () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  let rib = Bgp.collector_view bgp w.collectors in
  let inferred = Bgpdata.Rel_infer.infer (Bgpdata.Rib.all_paths rib) in
  let truth = Gen.host_neighbor_truth w in
  (* At least one true peer of the host must be invisible in the public
     view: its prefixes reach collectors via its transit, not via the
     host. This is the precondition for the paper's hidden-peer rows. *)
  let hidden =
    Asn.Map.fold
      (fun asn kind acc ->
        if kind = `Peer && not (Bgpdata.As_rel.known inferred w.host_asn asn) then
          asn :: acc
        else acc)
      truth []
  in
  Alcotest.(check bool) "some hidden peers exist" true (hidden <> [])

let test_moas_origins () =
  let w = Lazy.force world in
  let bgp = bgp_of w in
  List.iter
    (fun (p, extra_origin) ->
      Alcotest.(check bool)
        (Printf.sprintf "moas prefix %s has two origins" (Prefix.to_string p))
        true
        (Asn.Set.cardinal (Bgp.origins bgp p) >= 2);
      Alcotest.(check bool) "extra origin recorded" true
        (Asn.Set.mem extra_origin (Bgp.origins bgp p)))
    w.moas

(* Route records hold Asn.Set.t values; compare through a projection so
   the checks do not depend on balanced-tree internals. *)
let proj = function
  | None -> None
  | Some (r : Bgp.route) ->
    Some (r.cls, r.dist, Asn.Set.elements r.nexthops, r.parent)

let test_snapshot_route_equivalence () =
  let w = Lazy.force world in
  let snap = Bgp.freeze (bgp_of w) in
  let lazy_bgp = bgp_of w in
  let attached = Bgp.of_snapshot snap in
  let asns = Asn.Set.elements (Net.asns w.net) in
  Alcotest.(check int) "prefix_count" (List.length (Bgp.prefixes lazy_bgp))
    (Bgp.Snapshot.prefix_count snap);
  Alcotest.(check bool) "asn_count covers the net" true
    (Bgp.Snapshot.asn_count snap >= List.length asns);
  Alcotest.(check bool) "prefixes agree" true
    (Bgp.Snapshot.prefixes snap = Bgp.prefixes lazy_bgp);
  List.iter
    (fun p ->
      List.iter
        (fun asn ->
          let reference = proj (Bgp.route lazy_bgp asn p) in
          Alcotest.(check bool)
            (Printf.sprintf "Snapshot.route AS%d %s" asn (Prefix.to_string p))
            true
            (proj (Bgp.Snapshot.route snap asn p) = reference);
          Alcotest.(check bool)
            (Printf.sprintf "of_snapshot route AS%d %s" asn (Prefix.to_string p))
            true
            (proj (Bgp.route attached asn p) = reference))
        asns)
    (Bgp.prefixes lazy_bgp)

let test_snapshot_lookup_and_paths () =
  let w = Lazy.force world in
  let snap = Bgp.freeze (bgp_of w) in
  let lazy_bgp = bgp_of w in
  let probes =
    Ipv4.of_string_exn "203.0.113.9"
    :: List.concat_map
         (fun p -> [ Prefix.first p; Ipv4.add (Prefix.first p) 1; Prefix.last p ])
         (Bgp.prefixes lazy_bgp)
  in
  let lproj = Option.map (fun (p, r) -> (p, proj r)) in
  List.iter
    (fun addr ->
      Alcotest.(check bool)
        (Printf.sprintf "Snapshot.lookup %s" (Ipv4.to_string addr))
        true
        (lproj (Bgp.Snapshot.lookup snap w.host_asn addr)
        = lproj (Bgp.lookup lazy_bgp w.host_asn addr)))
    probes;
  List.iter
    (fun p ->
      List.iter
        (fun asn ->
          Alcotest.(check bool)
            (Printf.sprintf "Snapshot.as_path AS%d %s" asn (Prefix.to_string p))
            true
            (Bgp.Snapshot.as_path snap asn p = Bgp.as_path lazy_bgp asn p))
        (w.host_asn :: w.collectors))
    (Bgp.prefixes lazy_bgp)

let suite =
  [ Alcotest.test_case "all prefixes reachable from host" `Quick
      test_all_prefixes_reachable_from_host;
    Alcotest.test_case "route class preferences" `Quick test_route_class_preferences;
    Alcotest.test_case "valley-free paths" `Quick test_valley_free_paths;
    Alcotest.test_case "paths end at origin" `Quick test_paths_end_at_origin;
    Alcotest.test_case "collector view parses" `Quick test_collector_view_parses;
    Alcotest.test_case "hidden peers invisible in public view" `Quick
      test_hidden_peers_invisible;
    Alcotest.test_case "moas origins" `Quick test_moas_origins;
    Alcotest.test_case "snapshot route equivalence" `Quick
      test_snapshot_route_equivalence;
    Alcotest.test_case "snapshot lookup and paths" `Quick
      test_snapshot_lookup_and_paths ]
