open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen
module Engine = Probesim.Engine

let setup = lazy (
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  (w, Engine.create w fwd))

let vp (w : Gen.world) = List.hd w.vps

let find_as_with_filter w f =
  List.find_opt (fun (n : Net.as_node) -> n.Net.filter = f && n.Net.prefixes <> []) (Net.ases w.Gen.net)

let test_traceroute_hops_are_real () =
  let w, eng = Lazy.force setup in
  let open_as = Option.get (find_as_with_filter w Net.Open) in
  let dst = Ipv4.add (Prefix.first (List.hd open_as.Net.prefixes)) 1 in
  let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
  Alcotest.(check bool) "has hops" true (List.length hops > 2);
  List.iter
    (fun (h : Engine.hop) ->
      match h.reply with
      | None -> ()
      | Some r ->
        let router = Net.router w.Gen.net r.Engine.responder in
        (* The reported source address must exist on the responding
           router (canonical included). *)
        Alcotest.(check bool) "src on responder" true
          (List.exists (fun (i : Net.iface) -> Ipv4.equal i.Net.addr r.Engine.src) router.Net.ifaces
          || router.Net.canonical = Some r.Engine.src
          || Ipv4.equal r.Engine.src dst))
    hops

let test_first_hop_in_host_as () =
  let w, eng = Lazy.force setup in
  let open_as = Option.get (find_as_with_filter w Net.Open) in
  let dst = Ipv4.add (Prefix.first (List.hd open_as.Net.prefixes)) 1 in
  match Engine.traceroute eng ~vp:(vp w) ~dst () with
  | { reply = Some r; _ } :: _ ->
    Alcotest.(check int) "first responder in host AS" w.host_asn
      (Net.router w.Gen.net r.Engine.responder).Net.owner
  | _ -> Alcotest.fail "first hop silent"

let test_firewalled_as_truncates () =
  let w, eng = Lazy.force setup in
  match find_as_with_filter w Net.Firewall with
  | None -> ()  (* tiny world may lack one; other scenarios cover it *)
  | Some node ->
    let dst = Ipv4.add (Prefix.first (List.hd node.Net.prefixes)) 1 in
    let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
    let responders =
      List.filter_map
        (fun (h : Engine.hop) ->
          Option.map (fun (r : Engine.reply) -> r.Engine.responder) h.reply)
        hops
    in
    (* At most one responding router inside the firewalled AS (its
       border), and no echo reply from the destination. *)
    let inside =
      List.filter
        (fun rid -> Asn.equal (Net.router w.Gen.net rid).Net.owner node.Net.asn)
        responders
    in
    Alcotest.(check bool) "at most the border responds" true
      (List.length (List.sort_uniq compare inside) <= 1);
    Alcotest.(check bool) "no echo reply" true
      (List.for_all
         (fun (h : Engine.hop) ->
           match h.reply with
           | Some { kind = Engine.Echo_reply; _ } -> false
           | _ -> true)
         hops)

let test_silent_as_is_silent () =
  let w, eng = Lazy.force setup in
  match find_as_with_filter w Net.Silent with
  | None -> ()
  | Some node ->
    let dst = Ipv4.add (Prefix.first (List.hd node.Net.prefixes)) 1 in
    let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
    List.iter
      (fun (h : Engine.hop) ->
        match h.reply with
        | None -> ()
        | Some r ->
          Alcotest.(check bool) "no reply from silent AS" true
            (not (Asn.equal (Net.router w.Gen.net r.Engine.responder).Net.owner node.Net.asn)))
      hops

let test_ping_echo () =
  let w, eng = Lazy.force setup in
  (* Ping a host-AS interface: must reply with src = probed addr. *)
  let host_router =
    List.find
      (fun (r : Net.router) -> r.Net.behavior.echo && r.Net.ifaces <> [])
      (Net.routers_of w.Gen.net w.host_asn)
  in
  let addr = (List.hd host_router.Net.ifaces).Net.addr in
  match Engine.ping eng ~dst:addr with
  | None -> Alcotest.fail "host router did not answer ping"
  | Some r ->
    Alcotest.(check string) "echo src is probed addr" (Ipv4.to_string addr)
      (Ipv4.to_string r.Engine.src);
    Alcotest.(check bool) "kind" true (r.Engine.kind = Engine.Echo_reply)

let test_ping_unknown_addr () =
  let _, eng = Lazy.force setup in
  Alcotest.(check bool) "no reply from unassigned addr" true
    (Engine.ping eng ~dst:(Ipv4.of_string_exn "203.0.113.99") = None)

let test_udp_canonical () =
  let w, eng = Lazy.force setup in
  (* Find a router with Canonical udp mode and two interfaces: probing
     both addrs yields the same source. *)
  let candidate =
    List.find_opt
      (fun (r : Net.router) ->
        r.Net.behavior.udp = Net.Canonical
        && List.length r.Net.ifaces >= 2
        && (Net.as_node w.Gen.net r.Net.owner).Net.filter = Net.Open)
      (List.init (Net.router_count w.Gen.net) (Net.router w.Gen.net))
  in
  match candidate with
  | None -> Alcotest.fail "no canonical-udp router in tiny world"
  | Some r ->
    let a = (List.nth r.Net.ifaces 0).Net.addr in
    let b = (List.nth r.Net.ifaces 1).Net.addr in
    let sa = Engine.udp_probe eng ~dst:a and sb = Engine.udp_probe eng ~dst:b in
    (match (sa, sb) with
    | Some ra, Some rb ->
      Alcotest.(check string) "same canonical source" (Ipv4.to_string ra.Engine.src)
        (Ipv4.to_string rb.Engine.src)
    | _ -> Alcotest.fail "canonical router did not answer udp")

let test_shared_counter_monotone () =
  let w, eng = Lazy.force setup in
  let candidate =
    List.find
      (fun (r : Net.router) ->
        r.Net.behavior.ipid = Net.Shared_counter
        && List.length r.Net.ifaces >= 2
        && r.Net.behavior.echo
        && (Net.as_node w.Gen.net r.Net.owner).Net.filter = Net.Open)
      (List.init (Net.router_count w.Gen.net) (Net.router w.Gen.net))
  in
  let a = (List.nth candidate.Net.ifaces 0).Net.addr in
  let b = (List.nth candidate.Net.ifaces 1).Net.addr in
  let ids = ref [] in
  for _ = 1 to 5 do
    (match Engine.ping eng ~dst:a with
    | Some r -> ids := r.Engine.ipid :: !ids
    | None -> Alcotest.fail "ping a failed");
    match Engine.ping eng ~dst:b with
    | Some r -> ids := r.Engine.ipid :: !ids
    | None -> Alcotest.fail "ping b failed"
  done;
  Alcotest.(check bool) "merged ids monotonic" true
    (Aliasres.Ally.monotonic (List.rev !ids))

let test_clock_advances () =
  let w, eng = Lazy.force setup in
  ignore w;
  let t0 = Engine.now eng in
  let c0 = Engine.probe_count eng in
  ignore (Engine.ping eng ~dst:(Ipv4.of_string_exn "203.0.113.1"));
  Alcotest.(check bool) "clock advanced" true (Engine.now eng > t0);
  Alcotest.(check int) "probe counted" (c0 + 1) (Engine.probe_count eng);
  Engine.advance eng 300.0;
  Alcotest.(check bool) "manual advance" true (Engine.now eng >= t0 +. 300.0)

let test_echo_reply_on_delivery () =
  let w, eng = Lazy.force setup in
  (* Traceroute to an actual interface of an open AS: the last hop must
     be an echo reply sourced from the probed address. *)
  let open_as =
    List.find
      (fun (n : Net.as_node) ->
        n.Net.filter = Net.Open && n.Net.asn <> w.host_asn
        && Net.routers_of w.Gen.net n.Net.asn <> [])
      (Net.ases w.Gen.net)
  in
  let r =
    List.find
      (fun (r : Net.router) -> r.Net.behavior.echo && r.Net.ifaces <> [])
      (Net.routers_of w.Gen.net open_as.Net.asn)
  in
  let dst = (List.hd r.Net.ifaces).Net.addr in
  let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
  match List.rev hops with
  | { reply = Some { kind = Engine.Echo_reply; src; _ }; _ } :: _ ->
    Alcotest.(check string) "echo src" (Ipv4.to_string dst) (Ipv4.to_string src)
  | _ -> Alcotest.fail "no echo reply at path end"

let test_paris_vs_classic () =
  let w, eng = Lazy.force setup in
  (* Paris keeps one flow per trace: repeated runs yield identical hop
     sequences. Classic varies the flow per TTL and can mix equal-cost
     path arms, creating adjacencies that no single packet ever took. *)
  let dsts =
    List.filter_map
      (fun (n : Net.as_node) ->
        match n.Net.prefixes with
        | p :: _ when n.Net.asn <> w.host_asn -> Some (Ipv4.add (Prefix.first p) 1)
        | _ -> None)
      (Net.ases w.Gen.net)
  in
  let seq paris dst =
    List.filter_map
      (fun (h : Engine.hop) ->
        Option.map (fun (r : Engine.reply) -> r.Engine.responder) h.reply)
      (Engine.traceroute ~paris eng ~vp:(vp w) ~dst ())
  in
  List.iter
    (fun dst ->
      Alcotest.(check (list int)) "paris stable across runs" (seq true dst)
        (seq true dst))
    dsts;
  (* At least one destination must show a flow-dependent internal path. *)
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  let rids flow dst =
    List.map
      (fun (s : Routing.Forwarding.step) -> s.Routing.Forwarding.rid)
      (Routing.Forwarding.path ~flow fwd ~src_rid:(vp w).Gen.vp_rid ~dst ())
  in
  let flow_sensitive = List.exists (fun dst -> rids 1 dst <> rids 2 dst) dsts in
  Alcotest.(check bool) "equal-cost diamonds exist" true flow_sensitive

let suite =
  [ Alcotest.test_case "traceroute hops are real" `Quick test_traceroute_hops_are_real;
    Alcotest.test_case "paris vs classic" `Quick test_paris_vs_classic;
    Alcotest.test_case "first hop in host AS" `Quick test_first_hop_in_host_as;
    Alcotest.test_case "firewall truncates" `Quick test_firewalled_as_truncates;
    Alcotest.test_case "silent AS is silent" `Quick test_silent_as_is_silent;
    Alcotest.test_case "ping echo semantics" `Quick test_ping_echo;
    Alcotest.test_case "ping unknown addr" `Quick test_ping_unknown_addr;
    Alcotest.test_case "udp canonical source" `Quick test_udp_canonical;
    Alcotest.test_case "shared counter monotone" `Quick test_shared_counter_monotone;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "echo reply on delivery" `Quick test_echo_reply_on_delivery ]
