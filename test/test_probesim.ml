open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen
module Engine = Probesim.Engine

let setup = lazy (
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  (w, Engine.create w fwd))

let vp (w : Gen.world) = List.hd w.vps

let find_as_with_filter w f =
  List.find_opt (fun (n : Net.as_node) -> n.Net.filter = f && n.Net.prefixes <> []) (Net.ases w.Gen.net)

let test_traceroute_hops_are_real () =
  let w, eng = Lazy.force setup in
  let open_as = Option.get (find_as_with_filter w Net.Open) in
  let dst = Ipv4.add (Prefix.first (List.hd open_as.Net.prefixes)) 1 in
  let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
  Alcotest.(check bool) "has hops" true (List.length hops > 2);
  List.iter
    (fun (h : Engine.hop) ->
      match h.reply with
      | None -> ()
      | Some r ->
        let router = Net.router w.Gen.net r.Engine.responder in
        (* The reported source address must exist on the responding
           router (canonical included). *)
        Alcotest.(check bool) "src on responder" true
          (List.exists (fun (i : Net.iface) -> Ipv4.equal i.Net.addr r.Engine.src) router.Net.ifaces
          || router.Net.canonical = Some r.Engine.src
          || Ipv4.equal r.Engine.src dst))
    hops

let test_first_hop_in_host_as () =
  let w, eng = Lazy.force setup in
  let open_as = Option.get (find_as_with_filter w Net.Open) in
  let dst = Ipv4.add (Prefix.first (List.hd open_as.Net.prefixes)) 1 in
  match Engine.traceroute eng ~vp:(vp w) ~dst () with
  | { reply = Some r; _ } :: _ ->
    Alcotest.(check int) "first responder in host AS" w.host_asn
      (Net.router w.Gen.net r.Engine.responder).Net.owner
  | _ -> Alcotest.fail "first hop silent"

let test_firewalled_as_truncates () =
  let w, eng = Lazy.force setup in
  match find_as_with_filter w Net.Firewall with
  | None -> ()  (* tiny world may lack one; other scenarios cover it *)
  | Some node ->
    let dst = Ipv4.add (Prefix.first (List.hd node.Net.prefixes)) 1 in
    let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
    let responders =
      List.filter_map
        (fun (h : Engine.hop) ->
          Option.map (fun (r : Engine.reply) -> r.Engine.responder) h.reply)
        hops
    in
    (* At most one responding router inside the firewalled AS (its
       border), and no echo reply from the destination. *)
    let inside =
      List.filter
        (fun rid -> Asn.equal (Net.router w.Gen.net rid).Net.owner node.Net.asn)
        responders
    in
    Alcotest.(check bool) "at most the border responds" true
      (List.length (List.sort_uniq compare inside) <= 1);
    Alcotest.(check bool) "no echo reply" true
      (List.for_all
         (fun (h : Engine.hop) ->
           match h.reply with
           | Some { kind = Engine.Echo_reply; _ } -> false
           | _ -> true)
         hops)

let test_silent_as_is_silent () =
  let w, eng = Lazy.force setup in
  match find_as_with_filter w Net.Silent with
  | None -> ()
  | Some node ->
    let dst = Ipv4.add (Prefix.first (List.hd node.Net.prefixes)) 1 in
    let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
    List.iter
      (fun (h : Engine.hop) ->
        match h.reply with
        | None -> ()
        | Some r ->
          Alcotest.(check bool) "no reply from silent AS" true
            (not (Asn.equal (Net.router w.Gen.net r.Engine.responder).Net.owner node.Net.asn)))
      hops

let test_ping_echo () =
  let w, eng = Lazy.force setup in
  (* Ping a host-AS interface: must reply with src = probed addr. *)
  let host_router =
    List.find
      (fun (r : Net.router) -> r.Net.behavior.echo && r.Net.ifaces <> [])
      (Net.routers_of w.Gen.net w.host_asn)
  in
  let addr = (List.hd host_router.Net.ifaces).Net.addr in
  match Engine.ping eng ~dst:addr with
  | None -> Alcotest.fail "host router did not answer ping"
  | Some r ->
    Alcotest.(check string) "echo src is probed addr" (Ipv4.to_string addr)
      (Ipv4.to_string r.Engine.src);
    Alcotest.(check bool) "kind" true (r.Engine.kind = Engine.Echo_reply)

let test_ping_unknown_addr () =
  let _, eng = Lazy.force setup in
  Alcotest.(check bool) "no reply from unassigned addr" true
    (Engine.ping eng ~dst:(Ipv4.of_string_exn "203.0.113.99") = None)

let test_udp_canonical () =
  let w, eng = Lazy.force setup in
  (* Find a router with Canonical udp mode and two interfaces: probing
     both addrs yields the same source. *)
  let candidate =
    List.find_opt
      (fun (r : Net.router) ->
        r.Net.behavior.udp = Net.Canonical
        && List.length r.Net.ifaces >= 2
        && (Net.as_node w.Gen.net r.Net.owner).Net.filter = Net.Open)
      (List.init (Net.router_count w.Gen.net) (Net.router w.Gen.net))
  in
  match candidate with
  | None -> Alcotest.fail "no canonical-udp router in tiny world"
  | Some r ->
    let a = (List.nth r.Net.ifaces 0).Net.addr in
    let b = (List.nth r.Net.ifaces 1).Net.addr in
    let sa = Engine.udp_probe eng ~dst:a and sb = Engine.udp_probe eng ~dst:b in
    (match (sa, sb) with
    | Some ra, Some rb ->
      Alcotest.(check string) "same canonical source" (Ipv4.to_string ra.Engine.src)
        (Ipv4.to_string rb.Engine.src)
    | _ -> Alcotest.fail "canonical router did not answer udp")

let test_shared_counter_monotone () =
  let w, eng = Lazy.force setup in
  let candidate =
    List.find
      (fun (r : Net.router) ->
        r.Net.behavior.ipid = Net.Shared_counter
        && List.length r.Net.ifaces >= 2
        && r.Net.behavior.echo
        && (Net.as_node w.Gen.net r.Net.owner).Net.filter = Net.Open)
      (List.init (Net.router_count w.Gen.net) (Net.router w.Gen.net))
  in
  let a = (List.nth candidate.Net.ifaces 0).Net.addr in
  let b = (List.nth candidate.Net.ifaces 1).Net.addr in
  let ids = ref [] in
  for _ = 1 to 5 do
    (match Engine.ping eng ~dst:a with
    | Some r -> ids := r.Engine.ipid :: !ids
    | None -> Alcotest.fail "ping a failed");
    match Engine.ping eng ~dst:b with
    | Some r -> ids := r.Engine.ipid :: !ids
    | None -> Alcotest.fail "ping b failed"
  done;
  Alcotest.(check bool) "merged ids monotonic" true
    (Aliasres.Ally.monotonic (List.rev !ids))

let test_clock_advances () =
  let w, eng = Lazy.force setup in
  ignore w;
  let t0 = Engine.now eng in
  let c0 = Engine.probe_count eng in
  ignore (Engine.ping eng ~dst:(Ipv4.of_string_exn "203.0.113.1"));
  Alcotest.(check bool) "clock advanced" true (Engine.now eng > t0);
  Alcotest.(check int) "probe counted" (c0 + 1) (Engine.probe_count eng);
  Engine.advance eng 300.0;
  Alcotest.(check bool) "manual advance" true (Engine.now eng >= t0 +. 300.0)

let test_echo_reply_on_delivery () =
  let w, eng = Lazy.force setup in
  (* Traceroute to an actual interface of an open AS: the last hop must
     be an echo reply sourced from the probed address. *)
  let open_as =
    List.find
      (fun (n : Net.as_node) ->
        n.Net.filter = Net.Open && n.Net.asn <> w.host_asn
        && Net.routers_of w.Gen.net n.Net.asn <> [])
      (Net.ases w.Gen.net)
  in
  let r =
    List.find
      (fun (r : Net.router) -> r.Net.behavior.echo && r.Net.ifaces <> [])
      (Net.routers_of w.Gen.net open_as.Net.asn)
  in
  let dst = (List.hd r.Net.ifaces).Net.addr in
  let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
  match List.rev hops with
  | { reply = Some { kind = Engine.Echo_reply; src; _ }; _ } :: _ ->
    Alcotest.(check string) "echo src" (Ipv4.to_string dst) (Ipv4.to_string src)
  | _ -> Alcotest.fail "no echo reply at path end"

let test_paris_vs_classic () =
  let w, eng = Lazy.force setup in
  (* Paris keeps one flow per trace: repeated runs yield identical hop
     sequences. Classic varies the flow per TTL and can mix equal-cost
     path arms, creating adjacencies that no single packet ever took. *)
  let dsts =
    List.filter_map
      (fun (n : Net.as_node) ->
        match n.Net.prefixes with
        | p :: _ when n.Net.asn <> w.host_asn -> Some (Ipv4.add (Prefix.first p) 1)
        | _ -> None)
      (Net.ases w.Gen.net)
  in
  let seq paris dst =
    List.filter_map
      (fun (h : Engine.hop) ->
        Option.map (fun (r : Engine.reply) -> r.Engine.responder) h.reply)
      (Engine.traceroute ~paris eng ~vp:(vp w) ~dst ())
  in
  List.iter
    (fun dst ->
      Alcotest.(check (list int)) "paris stable across runs" (seq true dst)
        (seq true dst))
    dsts;
  (* At least one destination must show a flow-dependent internal path. *)
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  let rids flow dst =
    List.map
      (fun (s : Routing.Forwarding.step) -> s.Routing.Forwarding.rid)
      (Routing.Forwarding.path ~flow fwd ~src_rid:(vp w).Gen.vp_rid ~dst ())
  in
  let flow_sensitive = List.exists (fun dst -> rids 1 dst <> rids 2 dst) dsts in
  Alcotest.(check bool) "equal-cost diamonds exist" true flow_sensitive

(* ------------------------------------------------------------------ *)
(* Forward-path cache counters and response-pathology edge cases.      *)

let fresh_engine ?cache_cap (w : Gen.world) =
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  Engine.create ?cache_cap w fwd

(* A tiny-sized world where the rare edge filters are common, so the
   echo-only / firewalled / silent direct-probe cases all exist. *)
let edge_setup = lazy (
  let params =
    { Topogen.Scenario.tiny with
      Gen.name = "tiny-edge";
      p_cust_firewall = 0.25;
      p_cust_silent = 0.15;
      p_cust_echo_only = 0.30 }
  in
  let w = Gen.generate params in
  (w, fresh_engine w))

let open_dst w =
  let open_as = Option.get (find_as_with_filter w Net.Open) in
  Ipv4.add (Prefix.first (List.hd open_as.Net.prefixes)) 1

let test_cache_stats_counting () =
  let w, _ = Lazy.force setup in
  let eng = fresh_engine w in
  let dst = open_dst w in
  let s0 = Engine.stats eng in
  Alcotest.(check int) "fresh: no hits" 0 s0.Engine.hits;
  Alcotest.(check int) "fresh: no misses" 0 s0.Engine.misses;
  Alcotest.(check int) "fresh: empty" 0 s0.Engine.entries;
  let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
  let s1 = Engine.stats eng in
  (* Paris traceroute: one flow, one dst => a single forward-path
     computation however many TTLs were probed. *)
  Alcotest.(check int) "one path computed" 1 s1.Engine.misses;
  Alcotest.(check int) "every later ttl hits" (List.length hops - 1)
    s1.Engine.hits;
  Alcotest.(check int) "one entry" 1 s1.Engine.entries;
  Alcotest.(check int) "no evictions" 0 s1.Engine.evictions;
  ignore (Engine.traceroute eng ~vp:(vp w) ~dst ());
  let s2 = Engine.stats eng in
  Alcotest.(check int) "retrace misses nothing" 1 s2.Engine.misses

let test_cache_eviction_rotation () =
  let w, _ = Lazy.force setup in
  (* cache_cap=2 with classic (per-TTL flow) traces: every TTL is a new
     key, so the young generation rotates repeatedly and the second and
     later rotations discard the old generation. *)
  let eng = fresh_engine ~cache_cap:2 w in
  ignore (Engine.traceroute ~paris:false eng ~vp:(vp w) ~dst:(open_dst w) ());
  let s = Engine.stats eng in
  Alcotest.(check bool) "many distinct keys" true (s.Engine.misses > 4);
  Alcotest.(check bool) "rotation discarded entries" true
    (s.Engine.evictions > 0);
  Alcotest.(check bool) "footprint bounded by two generations" true
    (s.Engine.entries <= 4);
  (* Conservation: every key computed is either still resident or was
     discarded by a rotation. *)
  Alcotest.(check bool) "miss = entries + evicted + promoted" true
    (s.Engine.misses >= s.Engine.entries)

let test_old_generation_promotion () =
  let w, _ = Lazy.force setup in
  let eng = fresh_engine ~cache_cap:1 w in
  let dst = open_dst w in
  (* flow 0 fills young; flow 1 rotates it into old; re-probing flow 0
     must hit (old-generation lookup), not recompute. *)
  ignore (Engine.trace_probe ~flow:0 eng ~vp:(vp w) ~dst ~ttl:1);
  ignore (Engine.trace_probe ~flow:1 eng ~vp:(vp w) ~dst ~ttl:1);
  let before = (Engine.stats eng).Engine.misses in
  ignore (Engine.trace_probe ~flow:0 eng ~vp:(vp w) ~dst ~ttl:1);
  let s = Engine.stats eng in
  Alcotest.(check int) "promoted, not recomputed" before s.Engine.misses;
  Alcotest.(check bool) "hit recorded" true (s.Engine.hits > 0)

let test_gap_limit_truncates () =
  let w, eng = Lazy.force edge_setup in
  match find_as_with_filter w Net.Silent with
  | None -> Alcotest.fail "edge world must contain a silent AS"
  | Some node ->
    let dst = Ipv4.add (Prefix.first (List.hd node.Net.prefixes)) 1 in
    let trailing_silence gap_limit =
      let hops = Engine.traceroute eng ~vp:(vp w) ~dst ~gap_limit () in
      let rec count = function
        | { Engine.reply = None; _ } :: rest -> 1 + count rest
        | _ -> 0
      in
      (List.length hops, count (List.rev hops))
    in
    let len2, gaps2 = trailing_silence 2 in
    let len6, gaps6 = trailing_silence 6 in
    (* The trace into a silent network ends with exactly [gap_limit]
       unanswered probes: scamper gives up then, not at max_ttl. *)
    Alcotest.(check int) "gap_limit=2 stops after 2 gaps" 2 gaps2;
    Alcotest.(check int) "gap_limit=6 stops after 6 gaps" 6 gaps6;
    Alcotest.(check int) "same responsive prefix" (len6 - 6) (len2 - 2)

let test_echo_only_edge () =
  let w, eng = Lazy.force edge_setup in
  match find_as_with_filter w Net.Echo_only with
  | None -> Alcotest.fail "edge world must contain an echo-only AS"
  | Some node ->
    let dst = Ipv4.add (Prefix.first (List.hd node.Net.prefixes)) 1 in
    let hops = Engine.traceroute eng ~vp:(vp w) ~dst () in
    (* No TTL-expired ever emerges from inside the echo-only network
       (step 8.2 of 5.4.8 relies on exactly this signature). *)
    List.iter
      (fun (h : Engine.hop) ->
        match h.reply with
        | Some { kind = Engine.Ttl_expired; responder; _ } ->
          Alcotest.(check bool) "no ttl-expired from echo-only AS" true
            (not (Asn.equal (Net.router w.Gen.net responder).Net.owner node.Net.asn))
        | _ -> ())
      hops;
    (* Its border still answers direct echo probes. *)
    let border =
      List.find_opt
        (fun (r : Net.router) ->
          r.Net.behavior.echo
          && List.exists
               (fun (i : Net.iface) ->
                 (Net.link w.Gen.net i.Net.link).Net.kind <> Net.Internal)
               r.Net.ifaces)
        (Net.routers_of w.Gen.net node.Net.asn)
    in
    (match border with
    | None -> ()
    | Some r ->
      let addr = (List.hd r.Net.ifaces).Net.addr in
      (match Engine.ping eng ~dst:addr with
      | Some reply ->
        Alcotest.(check bool) "border echo reply" true
          (reply.Engine.kind = Engine.Echo_reply)
      | None -> Alcotest.fail "echo-only border ignored a direct ping"))

let test_firewalled_direct_probes () =
  let w, eng = Lazy.force edge_setup in
  match find_as_with_filter w Net.Firewall with
  | None -> Alcotest.fail "edge world must contain a firewalled AS"
  | Some node ->
    let is_border (r : Net.router) =
      List.exists
        (fun (i : Net.iface) ->
          (Net.link w.Gen.net i.Net.link).Net.kind <> Net.Internal)
        r.Net.ifaces
    in
    let routers = Net.routers_of w.Gen.net node.Net.asn in
    (* Interior routers are shielded from direct probes entirely. *)
    List.iter
      (fun (r : Net.router) ->
        if not (is_border r) then
          List.iter
            (fun (i : Net.iface) ->
              Alcotest.(check bool) "interior ping unanswered" true
                (Engine.ping eng ~dst:i.Net.addr = None);
              Alcotest.(check bool) "interior udp unanswered" true
                (Engine.udp_probe eng ~dst:i.Net.addr = None))
            r.Net.ifaces)
      routers;
    (* A border router with echo behaviour remains exposed. *)
    (match
       List.find_opt (fun r -> is_border r && r.Net.behavior.echo) routers
     with
    | None -> ()
    | Some r ->
      let addr = (List.hd r.Net.ifaces).Net.addr in
      Alcotest.(check bool) "border still answers" true
        (Engine.ping eng ~dst:addr <> None))

let suite =
  [ Alcotest.test_case "traceroute hops are real" `Quick test_traceroute_hops_are_real;
    Alcotest.test_case "paris vs classic" `Quick test_paris_vs_classic;
    Alcotest.test_case "first hop in host AS" `Quick test_first_hop_in_host_as;
    Alcotest.test_case "firewall truncates" `Quick test_firewalled_as_truncates;
    Alcotest.test_case "silent AS is silent" `Quick test_silent_as_is_silent;
    Alcotest.test_case "ping echo semantics" `Quick test_ping_echo;
    Alcotest.test_case "ping unknown addr" `Quick test_ping_unknown_addr;
    Alcotest.test_case "udp canonical source" `Quick test_udp_canonical;
    Alcotest.test_case "shared counter monotone" `Quick test_shared_counter_monotone;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "echo reply on delivery" `Quick test_echo_reply_on_delivery;
    Alcotest.test_case "cache stats counting" `Quick test_cache_stats_counting;
    Alcotest.test_case "cache eviction rotation" `Quick test_cache_eviction_rotation;
    Alcotest.test_case "old generation promotion" `Quick test_old_generation_promotion;
    Alcotest.test_case "gap limit truncates" `Quick test_gap_limit_truncates;
    Alcotest.test_case "echo-only edge" `Quick test_echo_only_edge;
    Alcotest.test_case "firewalled direct probes" `Quick test_firewalled_direct_probes ]
