(* End-to-end pipeline on generated worlds: accuracy, coverage,
   determinism, and reporting invariants. *)

module Gen = Topogen.Gen
open Netcore

let run_once params =
  let w = Gen.generate params in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.vps in
  let run = Bdrmap.Pipeline.execute engine inputs ~vp in
  (w, inputs, run)

let tiny_run = lazy (run_once Topogen.Scenario.tiny)
let re_run = lazy (run_once (Topogen.Scenario.r_and_e ~scale:0.4 ()))

let test_accuracy_tiny () =
  let w, _, run = Lazy.force tiny_run in
  let s = Bdrmap.Validate.summarize (Bdrmap.Validate.links w run.graph run.inference) in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.1f%% over %d links" s.pct_correct s.total)
    true
    (s.total > 10 && s.pct_correct >= 65.0);
  Alcotest.(check int) "no wrong-AS inferences" 0 s.wrong

let test_accuracy_r_and_e () =
  let w, _, run = Lazy.force re_run in
  let s = Bdrmap.Validate.summarize (Bdrmap.Validate.links w run.graph run.inference) in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.1f%% over %d links" s.pct_correct s.total)
    true
    (s.total > 20 && s.pct_correct >= 85.0)

let test_coverage () =
  let _, inputs, run = Lazy.force re_run in
  let t = Bdrmap.Report.table1 ~rels:inputs.rels ~vp_asns:inputs.vp_asns run.inference in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.1f%%" t.coverage_pct)
    true (t.coverage_pct >= 85.0)

let test_deterministic () =
  let _, _, run1 = run_once Topogen.Scenario.tiny in
  let _, _, run2 = run_once Topogen.Scenario.tiny in
  Alcotest.(check int) "same link count"
    (List.length run1.inference.links)
    (List.length run2.inference.links);
  let sig_of (run : Bdrmap.Pipeline.run) =
    List.map
      (fun (l : Bdrmap.Heuristics.border_link) ->
        (l.near_node, l.far_node, l.neighbor, Bdrmap.Heuristics.tag_label l.tag))
      run.inference.links
  in
  Alcotest.(check bool) "identical links" true (sig_of run1 = sig_of run2)

let test_links_have_near_host () =
  let _, _, run = Lazy.force tiny_run in
  List.iter
    (fun (l : Bdrmap.Heuristics.border_link) ->
      match l.near_node with
      | None -> Alcotest.fail "link without near router"
      | Some nid ->
        Alcotest.(check bool) "near router is host-owned" true
          (Bdrmap.Heuristics.owner_of run.inference nid = Bdrmap.Heuristics.Host_router))
    run.inference.links

let test_neighbors_not_vp_asns () =
  let _, inputs, run = Lazy.force tiny_run in
  List.iter
    (fun (l : Bdrmap.Heuristics.border_link) ->
      Alcotest.(check bool) "neighbor outside hosting org" true
        (not (Asn.Set.mem l.neighbor inputs.vp_asns)))
    run.inference.links

let test_far_nodes_unique_per_link () =
  let _, _, run = Lazy.force tiny_run in
  let keys =
    List.map
      (fun (l : Bdrmap.Heuristics.border_link) -> (l.near_node, l.far_node, l.neighbor))
      run.inference.links
  in
  Alcotest.(check int) "links deduplicated" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_artifacts_roundtrip () =
  (* Pipeline inputs already go through text round-trips; make sure the
     resulting rib is non-trivial and consistent with the world. *)
  let w, inputs, _ = Lazy.force tiny_run in
  Alcotest.(check bool) "rib has prefixes" true (Bgpdata.Rib.cardinal inputs.rib > 50);
  Alcotest.(check bool) "host prefixes in rib" true
    (Bgpdata.Rib.prefixes_originated_by inputs.rib (Asn.Set.singleton w.host_asn) <> [])

let test_router_accuracy_metric () =
  let w, _, run = Lazy.force re_run in
  let s = Bdrmap.Validate.router_accuracy w run.graph run.inference in
  Alcotest.(check bool) "router metric populated" true (s.total > 10);
  Alcotest.(check bool) "router accuracy sane" true
    (s.pct_correct >= 50.0 && s.pct_correct <= 100.0)

let test_shared_snapshot_sweep () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
  let vps = List.filteri (fun i _ -> i < 2) w.vps in
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.enable ();
  let count name = Obs.Metrics.find_counter (Obs.Metrics.collect ()) name in
  let builds0 = count "routing.snapshot.builds" in
  let shared = Bdrmap.Pipeline.freeze_routing w in
  let builds1 = count "routing.snapshot.builds" in
  Alcotest.(check int) "freeze_routing builds exactly once" (builds0 + 1) builds1;
  let attaches0 = count "routing.snapshot.attaches" in
  let runs_shared = Bdrmap.Pipeline.execute_all ~shared w inputs ~vps in
  Alcotest.(check int) "supplied shared is not rebuilt" builds1
    (count "routing.snapshot.builds");
  Alcotest.(check bool) "every VP attaches to the snapshot" true
    (count "routing.snapshot.attaches" - attaches0 >= List.length vps);
  if not was_enabled then Obs.Metrics.disable ();
  (* The sweep result must not depend on whether routing was served from
     the frozen snapshot or recomputed lazily per VP. *)
  let runs_lazy = Bdrmap.Pipeline.execute_all w inputs ~vps in
  let sig_of (run : Bdrmap.Pipeline.run) =
    List.map
      (fun (l : Bdrmap.Heuristics.border_link) ->
        (l.near_node, l.far_node, l.neighbor, Bdrmap.Heuristics.tag_label l.tag))
      run.inference.links
  in
  Alcotest.(check bool) "shared sweep = lazy sweep" true
    (List.map sig_of runs_shared = List.map sig_of runs_lazy)

let suite =
  [ Alcotest.test_case "tiny accuracy" `Quick test_accuracy_tiny;
    Alcotest.test_case "r&e accuracy" `Quick test_accuracy_r_and_e;
    Alcotest.test_case "coverage" `Quick test_coverage;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "links anchored at host" `Quick test_links_have_near_host;
    Alcotest.test_case "neighbors outside org" `Quick test_neighbors_not_vp_asns;
    Alcotest.test_case "links deduplicated" `Quick test_far_nodes_unique_per_link;
    Alcotest.test_case "artifact roundtrip" `Quick test_artifacts_roundtrip;
    Alcotest.test_case "router accuracy metric" `Quick test_router_accuracy_metric;
    Alcotest.test_case "shared snapshot sweep" `Quick test_shared_snapshot_sweep ]
