module Dns = Topogen.Dns
module Gen = Topogen.Gen
module Net = Topogen.Net

let world = lazy (Gen.generate Topogen.Scenario.tiny)

let dns = lazy (Dns.build (Lazy.force world).Gen.net ~seed:7)

let test_coverage () =
  let w = Lazy.force world in
  let d = Lazy.force dns in
  let total =
    List.fold_left (fun n (_ : Net.link) -> n + 2) 0 (Net.links w.Gen.net)
  in
  let named = Dns.cardinal d in
  Alcotest.(check bool)
    (Printf.sprintf "named fraction plausible (%d/%d)" named total)
    true
    (float_of_int named >= 0.6 *. float_of_int total
    && float_of_int named <= float_of_int total)

let test_deterministic () =
  let w = Lazy.force world in
  let d1 = Dns.build w.Gen.net ~seed:7 in
  let d2 = Dns.build w.Gen.net ~seed:7 in
  List.iter
    (fun (l : Net.link) ->
      Alcotest.(check (option string)) "same name" (Dns.lookup d1 (snd l.Net.a))
        (Dns.lookup d2 (snd l.Net.a)))
    (Net.links w.Gen.net)

let test_parse_city_roundtrip () =
  let w = Lazy.force world in
  let d = Lazy.force dns in
  let checked = ref 0 and agree = ref 0 in
  List.iter
    (fun (l : Net.link) ->
      List.iter
        (fun (rid, addr) ->
          match Dns.lookup d addr with
          | None -> ()
          | Some name -> (
            match Dns.parse_city name with
            | None -> Alcotest.failf "unparseable name %s" name
            | Some city ->
              incr checked;
              let r = Net.router w.Gen.net rid in
              if Topogen.Geo.equal_city city r.Net.city then incr agree))
        [ l.Net.a; l.Net.b ])
    (Net.links w.Gen.net);
  Alcotest.(check bool) "names parsed" true (!checked > 50);
  (* Mislabels exist but are rare. *)
  Alcotest.(check bool)
    (Printf.sprintf "mostly correct metros (%d/%d)" !agree !checked)
    true
    (float_of_int !agree >= 0.9 *. float_of_int !checked)

let test_parse_asn () =
  let w = Lazy.force world in
  let d = Lazy.force dns in
  List.iter
    (fun (l : Net.link) ->
      match Dns.lookup d (snd l.Net.a) with
      | None -> ()
      | Some name ->
        let r = Net.router w.Gen.net (fst l.Net.a) in
        Alcotest.(check (option int)) "asn embedded" (Some r.Net.owner)
          (Dns.parse_asn name))
    (Net.links w.Gen.net)

let test_city_codes () =
  Alcotest.(check string) "known code" "dal"
    (Dns.city_code (Option.get (Topogen.Geo.city_named "Dallas")));
  Alcotest.(check string) "nyc" "nyc"
    (Dns.city_code (Option.get (Topogen.Geo.city_named "New York")));
  let codes = Array.map Dns.city_code Topogen.Geo.us_cities in
  Alcotest.(check int) "codes unique" (Array.length codes)
    (List.length (List.sort_uniq compare (Array.to_list codes)))

let test_parse_garbage () =
  Alcotest.(check bool) "garbage yields none" true (Dns.parse_city "foo" = None);
  Alcotest.(check bool) "no asn" true (Dns.parse_asn "a.b.c" = None)

let suite =
  [ Alcotest.test_case "coverage" `Quick test_coverage;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "parse city roundtrip" `Quick test_parse_city_roundtrip;
    Alcotest.test_case "parse asn" `Quick test_parse_asn;
    Alcotest.test_case "city codes" `Quick test_city_codes;
    Alcotest.test_case "parse garbage" `Quick test_parse_garbage ]
