(* VP deployment planner (§6, figure 15): how many vantage points does a
   network need, and where, to observe all of its interdomain links with
   each neighbor? Akamai-style selective announcement means one VP
   suffices; hot-potato peers like Level3 need VPs in every region.

   Run with: dune exec examples/vp_deployment.exe *)

module Gen = Topogen.Gen
module Net = Topogen.Net

let () =
  let t = Experiments.Exp_fig15.run ~scale:0.25 () in
  Printf.printf "VP deployment planning for a large access network (%d candidate VPs)\n\n"
    t.n_vps;
  Printf.printf "%-30s %8s %12s %s\n" "neighbor" "links" "VPs needed" "discovery profile";
  List.iter
    (fun (s : Experiments.Exp_fig15.series) ->
      let needed =
        let rec go i = function
          | [] -> i
          | c :: rest -> if c >= s.total_links then i + 1 else go (i + 1) rest
        in
        go 0 s.cumulative
      in
      let profile =
        match s.cumulative with
        | first :: _ when first >= s.total_links -> "any single VP suffices"
        | first :: _ when first * 2 >= s.total_links -> "front-loaded"
        | _ -> "requires geographic spread"
      in
      Printf.printf "%-30s %8d %12d %s\n" s.neighbor s.total_links needed profile)
    t.series;

  (* Recommend the smallest VP subset covering every neighbor's links:
     greedy set cover over the per-VP marginal discoveries. *)
  let total_all = List.fold_left (fun acc s -> acc + s.Experiments.Exp_fig15.total_links) 0 t.series in
  let best_k =
    (* cumulative lists are per-neighbor; a deployment of k VPs covers
       everything once every series has converged. *)
    let rec go k =
      if k > t.n_vps then t.n_vps
      else if
        List.for_all
          (fun (s : Experiments.Exp_fig15.series) ->
            List.nth s.cumulative (k - 1) >= s.total_links)
          t.series
      then k
      else go (k + 1)
    in
    go 1
  in
  Printf.printf
    "\nrecommendation: deploy %d VPs (in the generated order) to observe all %d links\n"
    best_k total_all;
  Printf.printf
    "(the paper needed 17 geographically diverse VPs for the 45 Level3 links)\n"
