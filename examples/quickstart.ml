(* Quickstart: generate a small simulated internetwork, run the full
   bdrmap pipeline from one vantage point, and print the inferred border
   routers with the heuristic that identified each.

   Run with: dune exec examples/quickstart.exe *)

module Gen = Topogen.Gen
open Netcore

let () =
  (* 1. A small world: one hosting AS, a handful of neighbors. *)
  let world = Gen.generate Topogen.Scenario.tiny in
  Printf.printf "world: %d ASes, %d routers, %d links\n"
    (List.length (Topogen.Net.ases world.net))
    (Topogen.Net.router_count world.net)
    (Topogen.Net.link_count world.net);

  (* 2. Build the probing stack and the public input artifacts (BGP
     collector view, inferred AS relationships, IXP list, delegations). *)
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup world in
  Printf.printf "public view: %d prefixes, %d relationship edges\n"
    (Bgpdata.Rib.cardinal inputs.rib)
    (Bgpdata.As_rel.edge_count inputs.rels);

  (* 3. Run bdrmap from the first VP. *)
  let vp = List.hd world.vps in
  Printf.printf "probing from %s...\n%!" vp.Gen.vp_name;
  let run = Bdrmap.Pipeline.execute engine inputs ~vp in
  Printf.printf "%s\n"
    (Format.asprintf "%a" Probesim.Scheduler.pp run.collection.sched);

  (* 4. The inferred interdomain links. *)
  Printf.printf "\ninferred borders (%d links):\n" (List.length run.inference.links);
  List.iter
    (fun (l : Bdrmap.Heuristics.border_link) ->
      let addrs_of = function
        | None -> "(unobserved)"
        | Some id ->
          String.concat ","
            (List.map Ipv4.to_string (Bdrmap.Rgraph.all_addrs (Bdrmap.Rgraph.node run.graph id)))
      in
      Printf.printf "  %-22s -> %-28s neighbor %-8s via %s\n"
        (addrs_of l.near_node) (addrs_of l.far_node)
        (Asn.to_string l.neighbor)
        (Bdrmap.Heuristics.tag_label l.tag))
    run.inference.links;

  (* 5. Score against the generator's ground truth. *)
  let s =
    Bdrmap.Validate.summarize
      (Bdrmap.Validate.links world run.graph run.inference)
  in
  Printf.printf "\nvalidation: %s\n" (Format.asprintf "%a" Bdrmap.Validate.pp_summary s)
