(* Congestion-probing target list (the paper's motivating application,
   §2): the CAIDA/MIT interdomain congestion project probes the near and
   far side of every interdomain link with time-series latency probes
   (TSLP). The hard part is knowing WHICH address pairs straddle a
   border — exactly what bdrmap infers.

   This example runs bdrmap on the R&E scenario and emits one probing
   assignment per inferred link: the near-side router address (inside the
   hosting network) and the far-side address (the neighbor's router).

   Run with: dune exec examples/congestion_targets.exe *)

module Gen = Topogen.Gen
open Netcore

type assignment = {
  neighbor : Asn.t;
  near : Ipv4.t option;
  far : Ipv4.t option;
  confidence : string;
}

let () =
  let world = Gen.generate (Topogen.Scenario.r_and_e ~scale:0.5 ()) in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup world in
  let vp = List.hd world.vps in
  let run = Bdrmap.Pipeline.execute engine inputs ~vp in

  let assignments =
    List.map
      (fun (l : Bdrmap.Heuristics.border_link) ->
        let first_addr = function
          | None -> None
          | Some id -> (
            match Bdrmap.Rgraph.all_addrs (Bdrmap.Rgraph.node run.graph id) with
            | a :: _ -> Some a
            | [] -> None)
        in
        let confidence =
          (* Links identified from direct router evidence are better
             probing anchors than silent placements. *)
          match l.tag with
          | Bdrmap.Heuristics.T4_onenet | Bdrmap.Heuristics.T5_relationship -> "high"
          | Bdrmap.Heuristics.T8_silent | Bdrmap.Heuristics.T8_other_icmp -> "low"
          | _ -> "medium"
        in
        { neighbor = l.neighbor; near = first_addr l.near_node;
          far = first_addr l.far_node; confidence })
      run.inference.links
  in

  Printf.printf "# TSLP probing assignments: one line per inferred interdomain link\n";
  Printf.printf "# neighbor, near-side target, far-side target, confidence\n";
  List.iter
    (fun a ->
      let str = function
        | Some addr -> Ipv4.to_string addr
        | None -> "-"
      in
      Printf.printf "%-10s %-16s %-16s %s\n" (Asn.to_string a.neighbor) (str a.near)
        (str a.far) a.confidence)
    assignments;

  (* Summary per neighbor: how many links would be monitored. *)
  let by_neighbor = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.replace by_neighbor a.neighbor
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_neighbor a.neighbor)))
    assignments;
  Printf.printf "\n%d links across %d neighbors; multi-link neighbors:\n"
    (List.length assignments) (Hashtbl.length by_neighbor);
  Hashtbl.iter
    (fun asn n -> if n > 1 then Printf.printf "  %s: %d links\n" (Asn.to_string asn) n)
    by_neighbor;

  (* Now the point of the exercise: monitor the inferred borders with
     time-series latency probes. Plant evening congestion on two true
     interdomain links and see whether monitoring the INFERRED address
     pairs finds them. *)
  let bgp2 =
    Routing.Bgp.create world.net world.rels_truth
      ~originated:(Gen.originated world) ~selective:world.selective
  in
  let fwd2 = Routing.Forwarding.create world.net bgp2 in
  let engine2 = Probesim.Engine.create world fwd2 in
  let tslp = Probesim.Tslp.create engine2 fwd2 in
  let monitorable =
    List.filter (fun a -> a.near <> None && a.far <> None) assignments
  in
  let vp0 = List.hd world.vps in
  (* Pick monitored links whose probe path really crosses the true link
     behind the far address: those are the borders TSLP can watch. *)
  let link_of a =
    match a.far with
    | None -> None
    | Some far -> (
      match Topogen.Net.owner_of_addr world.net far with
      | None -> None
      | Some r ->
        List.find_map
          (fun (i : Topogen.Net.iface) ->
            let l = Topogen.Net.link world.net i.Topogen.Net.link in
            if Ipv4.equal i.Topogen.Net.addr far then Some l else None)
          r.Topogen.Net.ifaces)
  in
  let crosses a (l : Topogen.Net.link) =
    match a.far with
    | None -> false
    | Some far ->
      List.exists
        (fun (s : Routing.Forwarding.step) ->
          match s.Routing.Forwarding.in_link with
          | Some l' -> l'.Topogen.Net.lid = l.Topogen.Net.lid
          | None -> false)
        (Routing.Forwarding.path fwd2 ~src_rid:vp0.Gen.vp_rid ~dst:far ())
  in
  let congested_truth =
    List.filter_map
      (fun a ->
        match link_of a with
        | Some l when crosses a l -> Some (a, l)
        | _ -> None)
      monitorable
    |> List.filteri (fun i _ -> i mod 7 = 1)
  in
  List.iter
    (fun (_, (l : Topogen.Net.link)) ->
      Probesim.Tslp.congest tslp ~lid:l.Topogen.Net.lid ~peak_start_s:64800.0
        ~peak_end_s:86400.0 ~extra_ms:35.0)
    congested_truth;
  Printf.printf "\nTSLP monitoring (24h, hourly) of %d links; %d carry planted evening congestion:\n"
    (List.length monitorable) (List.length congested_truth);
  let detected = ref 0 and false_alarms = ref 0 in
  List.iter
    (fun a ->
      match (a.near, a.far) with
      | Some near, Some far -> (
        let samples =
          Probesim.Tslp.monitor tslp ~vp:vp0 ~near ~far ~interval_s:3600.0 ~samples:24
        in
        let truly_congested =
          List.exists (fun (a', _) -> a' == a) congested_truth
        in
        match Probesim.Tslp.diagnose samples with
        | Some shift ->
          if truly_congested then incr detected else incr false_alarms;
          Printf.printf "  %s <-> %s: CONGESTED (+%.0f ms)%s\n" (Ipv4.to_string near)
            (Ipv4.to_string far) shift
            (if truly_congested then "" else "  [false alarm]")
        | None ->
          if truly_congested then
            Printf.printf "  %s <-> %s: missed planted congestion\n"
              (Ipv4.to_string near) (Ipv4.to_string far))
      | _ -> ())
    monitorable;
  Printf.printf "detected %d/%d planted episodes, %d false alarms\n" !detected
    (List.length congested_truth) !false_alarms
