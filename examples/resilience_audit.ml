(* Resiliency audit (§2 "Network Modeling and Resilience", figure 14):
   which destinations depend on a single egress router or a single
   next-hop AS? A border map makes the question answerable: prefixes
   with one exit point are the fragile ones.

   Run with: dune exec examples/resilience_audit.exe *)

module Gen = Topogen.Gen
module Net = Topogen.Net
open Netcore

let () =
  let params = Topogen.Scenario.large_access ~scale:0.2 () in
  let env = Experiments.Exp_common.make params in
  let w = env.world in
  let host_org =
    Option.value ~default:"host" (Bgpdata.As2org.org_of w.as2org w.host_asn)
  in
  let prefixes = Experiments.Exp_common.external_prefixes env in
  Printf.printf "resiliency audit: %d prefixes, %d VPs\n\n" (List.length prefixes)
    (List.length w.vps);

  (* For each prefix, the set of egress routers and next-hop ASes that
     can carry traffic toward it from anywhere in the network. *)
  let fragile = ref [] and single_as = ref [] and total = ref 0 in
  List.iter
    (fun (p, dst) ->
      let routers = ref [] and nexthops = ref Asn.Set.empty in
      List.iter
        (fun vp ->
          match Experiments.Exp_common.crossing_link env ~vp ~dst with
          | None -> ()
          | Some l ->
            let ra = Net.router w.net (fst l.Net.a) in
            let rb = Net.router w.net (fst l.Net.b) in
            let near, far =
              if
                Option.value ~default:""
                  (Bgpdata.As2org.org_of w.as2org ra.Net.owner)
                = host_org
              then (ra, rb)
              else (rb, ra)
            in
            routers := near.Net.rid :: !routers;
            nexthops := Asn.Set.add far.Net.owner !nexthops)
        w.vps;
      let distinct = List.length (List.sort_uniq compare !routers) in
      if distinct > 0 then begin
        incr total;
        if distinct = 1 then fragile := p :: !fragile;
        if Asn.Set.cardinal !nexthops = 1 then single_as := p :: !single_as
      end)
    prefixes;

  Printf.printf "single egress router: %d/%d prefixes\n" (List.length !fragile) !total;
  Printf.printf "single next-hop AS:   %d/%d prefixes\n" (List.length !single_as) !total;

  (* The fragile prefixes, grouped by the neighbor they depend on. *)
  let by_neighbor = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let origins = Routing.Bgp.origins env.bgp p in
      if not (Asn.Set.is_empty origins) then begin
        let o = Asn.Set.min_elt origins in
        Hashtbl.replace by_neighbor o
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_neighbor o))
      end)
    !fragile;
  let worst =
    Hashtbl.fold (fun asn n acc -> (n, asn) :: acc) by_neighbor []
    |> List.sort compare |> List.rev
    |> List.filteri (fun i _ -> i < 8)
  in
  Printf.printf "\nmost exposed origin ASes (single-egress prefixes):\n";
  List.iter (fun (n, asn) -> Printf.printf "  %-10s %d prefixes\n" (Asn.to_string asn) n) worst;
  Printf.printf
    "\n(the paper found <2%% of Internet prefixes single-exit for this ISP;\n\
    \ direct single-homed customers dominate the fragile set)\n"
