(* bdrmap command-line driver: generate a simulated world, run the
   collection/inference pipeline from a VP, validate against ground truth,
   and regenerate the paper's tables and figures. *)

open Cmdliner
module Gen = Topogen.Gen

(* Argument parsing: every value is validated in its [Arg.conv], so a bad
   value yields cmdliner's one-line error plus usage on stderr and the
   CLI-error exit code — never a crash or a silent no-op deep in a run. *)

let scenario_conv =
  let parse s =
    match Topogen.Scenario.by_name s with
    | Some f -> Ok (s, f)
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown scenario %S (expected r_and_e, large_access, tier1, small_access)"
             s))
  in
  Arg.conv (parse, fun ppf (name, _) -> Format.pp_print_string ppf name)

let scenario_arg =
  Arg.(
    required
    & opt (some scenario_conv) None
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Scenario preset: r_and_e, large_access, tier1 or small_access.")

let scale_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f > 0.0 -> Ok f
    | Some _ ->
      Error (`Msg (Printf.sprintf "scale must be a finite number > 0, got %s" s))
    | None -> Error (`Msg (Printf.sprintf "invalid scale %S (expected a number)" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let scale_arg =
  Arg.(
    value & opt scale_conv 1.0
    & info [ "scale" ] ~docv:"F"
        ~doc:"Scale factor applied to neighbor counts (a finite number > 0).")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"N" ~doc:"Generator seed (default: the preset's).")

let vp_arg =
  Arg.(
    value & opt int 0
    & info [ "vp" ] ~docv:"I" ~doc:"Vantage point index (default 0).")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "jobs must be >= 0, got %s" s))
    | None ->
      Error (`Msg (Printf.sprintf "invalid jobs count %S (expected an integer)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt jobs_conv 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "BDRMAP_JOBS")
        ~doc:
          "Worker domains for multi-VP work (0 = one per recommended core). \
           Results are byte-identical whatever the value; only wall-clock \
           changes.")

(* 0 means auto: one domain per core the runtime recommends. A pool is
   only spun up when it can actually help. *)
let resolve_jobs n = if n >= 1 then n else max 1 (Domain.recommended_domain_count ())

let with_jobs n f =
  let n = resolve_jobs n in
  if n = 1 then f None
  else Netcore.Pool.with_pool ~domains:n (fun pool -> f (Some pool))

(* Run-store flags, shared by the commands that can reuse completed
   per-VP work. The store never changes what is computed — only whether
   it is recomputed — so stdout stays byte-identical with or without
   it. *)

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "BDRMAP_STORE")
        ~doc:
          "Persistent run store: completed per-VP runs are checkpointed \
           under $(docv) and warm re-runs deserialize instead of \
           recomputing. Output is byte-identical either way.")

let no_store_arg =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:"Ignore --store and $(b,BDRMAP_STORE); always recompute.")

let store_term =
  let mk dir no_store = if no_store then None else dir in
  Term.(const mk $ store_dir_arg $ no_store_arg)

let open_store dir =
  Option.map
    (fun d ->
      Obs.Log.info "run store at %s" d;
      Store.open_dir d)
    dir

let all_vps_arg =
  Arg.(
    value & flag
    & info [ "all-vps" ]
        ~doc:
          "Run the pipeline from every vantage point (in parallel under \
           --jobs) and merge the per-VP inferences into one border map.")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Directory for output artifacts.")

(* Observability flags, shared by every command. All of their output
   goes to stderr or to files: stdout carries only the inference
   results, byte-identical whatever is enabled here. *)

type obs_opts = {
  trace : string option;
  metrics : bool;
  manifest : string option;
  verbosity : int;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL trace (stage spans, per-router provenance, \
             per-heuristic fire counts) to $(docv).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect pipeline metrics and print a summary to stderr at exit.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Write a run manifest (seed, scale, jobs, config hash, stage \
             timings, metric totals) to $(docv). With --trace or --metrics a \
             manifest.json is written even without this flag.")
  in
  let verbose =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ]
          ~doc:"Increase log verbosity on stderr (repeat for debug).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Log errors only.")
  in
  let mk trace metrics manifest verbose quiet =
    { trace;
      metrics;
      manifest;
      verbosity = (if quiet then -1 else List.length verbose) }
  in
  Term.(const mk $ trace $ metrics $ manifest $ verbose $ quiet)

let print_metrics_summary () =
  let ms = Obs.Metrics.collect () in
  Printf.eprintf "== metrics (%d) ==\n" (List.length ms);
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Counter n -> Printf.eprintf "  %-36s %d\n" name n
      | Obs.Metrics.Gauge g -> Printf.eprintf "  %-36s %g\n" name g
      | Obs.Metrics.Histogram h ->
        Printf.eprintf "  %-36s count=%d sum=%g\n" name h.Obs.Metrics.h_count
          h.Obs.Metrics.h_sum)
    ms;
  flush stderr

(* [with_obs obs ... f] brackets a command with the observability
   lifecycle: verbosity, metrics gate and trace sink before [f]; metrics
   summary, manifest and sink teardown after (teardown also on raise).
   [config] is a stable rendering of the full configuration — only its
   hash lands in the manifest. *)
let with_obs obs ~command ~scale ~jobs ?seed ~config ?out_dir ?(extra = []) f =
  Obs.Log.set_verbosity obs.verbosity;
  let enabled = obs.trace <> None || obs.metrics || obs.manifest <> None in
  if enabled then Obs.Metrics.enable ();
  Option.iter
    (fun path ->
      Obs.Log.info "tracing to %s" path;
      Obs.Span.set_sink (Some (Obs.Span.file_sink path)))
    obs.trace;
  Fun.protect
    ~finally:(fun () -> Obs.Span.close_sink ())
    (fun () ->
      let r = f () in
      if obs.metrics then print_metrics_summary ();
      let manifest_path =
        match obs.manifest with
        | Some path -> Some path
        | None ->
          if enabled then
            Some (Filename.concat (Option.value ~default:"." out_dir) "manifest.json")
          else None
      in
      Option.iter
        (fun path ->
          Obs.Manifest.write ~path ~command ~scale ~jobs:(resolve_jobs jobs) ?seed
            ~config ~extra ();
          Obs.Log.info "wrote %s" path)
        manifest_path;
      r)

type scenario_fn = ?scale:float -> ?seed:int -> unit -> Gen.params

let params_of (scenario : scenario_fn) scale seed =
  match seed with
  | Some seed -> scenario ~scale ~seed ()
  | None -> scenario ~scale ()

let config_string ~command ~scenario ~scale ~seed ~jobs kvs =
  let base =
    [ ("command", command);
      ("scenario", scenario);
      ("scale", Printf.sprintf "%g" scale);
      ( "seed",
        match seed with Some s -> string_of_int s | None -> "preset" );
      ("jobs", string_of_int (resolve_jobs jobs)) ]
  in
  String.concat " "
    (List.map (fun (k, v) -> k ^ "=" ^ v) (base @ kvs))

(* Output artifacts are published atomically: content goes to a temp
   file in the target directory and lands under its real name with a
   rename, and the channel is closed (and the temp removed) even when a
   write raises — a failed command leaves either the complete file or
   nothing, never a torn artifact or a leaked fd. *)
let write_file path lines =
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         List.iter
           (fun l ->
             output_string oc l;
             output_char oc '\n')
           lines)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Printf.printf "wrote %s (%d lines)\n%!" path (List.length lines)

let setup_env params =
  let world = Gen.generate params in
  let bgp, fwd, engine, inputs = Bdrmap.Pipeline.setup world in
  ignore fwd;
  ignore bgp;
  (world, engine, inputs)

(* generate: emit the public input artifacts of §5.2. *)
let generate (scenario_name, scenario) scale seed out obs =
  let config =
    config_string ~command:"generate" ~scenario:scenario_name ~scale ~seed ~jobs:1 []
  in
  with_obs obs ~command:"generate" ~scale ~jobs:1 ?seed ~config ?out_dir:out
    (fun () ->
      let params = params_of scenario scale seed in
      let world, _, inputs = setup_env params in
      let dir = Option.value ~default:"." out in
      write_file (Filename.concat dir "rib.txt") (Bgpdata.Rib.to_lines inputs.rib);
      write_file (Filename.concat dir "as-rel.txt")
        (Bgpdata.As_rel.to_lines inputs.rels);
      write_file (Filename.concat dir "ixp.txt") (Bgpdata.Ixp.to_lines inputs.ixp);
      write_file
        (Filename.concat dir "delegations.txt")
        (Bgpdata.Delegation.to_lines inputs.delegations);
      write_file (Filename.concat dir "as2org.txt")
        (Bgpdata.As2org.to_lines world.as2org);
      write_file
        (Filename.concat dir "vp-asns.txt")
        (List.map string_of_int (Netcore.Asn.Set.elements world.siblings));
      Printf.printf "world: %d ASes, %d routers, %d links, %d VPs\n"
        (List.length (Topogen.Net.ases world.net))
        (Topogen.Net.router_count world.net)
        (Topogen.Net.link_count world.net)
        (List.length world.vps))

let pick_vp (world : Gen.world) i =
  match List.nth_opt world.vps i with
  | Some vp -> vp
  | None ->
    failwith
      (Printf.sprintf "vp index %d out of range (%d VPs)" i (List.length world.vps))

(* run --all-vps: the deployed-system mode — every VP's pipeline on the
   domain pool, merged into one network-wide border map. Returns the
   merged map so `serve` can index it. *)
let run_all_vps ?shared world inputs store pool =
  let vps = world.Gen.vps in
  let domains = match pool with Some p -> Netcore.Pool.size p | None -> 1 in
  Printf.printf "running bdrmap from %d VPs on %d domain%s...\n%!" (List.length vps)
    domains
    (if domains = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let runs = Bdrmap.Pipeline.execute_all ?pool ?store ?shared world inputs ~vps in
  let merged =
    Bdrmap.Aggregate.merge_runs ?pool
      (List.map2
         (fun (vp : Gen.vp) (r : Bdrmap.Pipeline.run) ->
           (vp.Gen.vp_name, r.Bdrmap.Pipeline.graph, r.Bdrmap.Pipeline.inference))
         vps runs)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%d merged links across %d VPs in %.1fs\n" (List.length merged)
    (List.length vps) dt;
  let by_neighbor = Bdrmap.Aggregate.per_neighbor merged in
  List.iteri
    (fun i (asn, n) ->
      if i < 15 then
        Printf.printf "  AS%-8d %4d link%s\n" asn n (if n = 1 then "" else "s"))
    by_neighbor;
  if List.length by_neighbor > 15 then
    Printf.printf "  ... and %d more neighbors\n" (List.length by_neighbor - 15);
  let mu =
    Bdrmap.Aggregate.marginal_utility
      ~vp_order:(List.map (fun (vp : Gen.vp) -> vp.Gen.vp_name) vps)
      merged
  in
  Printf.printf "cumulative links by #VPs:";
  List.iter (Printf.printf " %d") mu;
  print_newline ();
  merged

(* run: the full pipeline, with validation and Table-1 reporting. *)
let run (scenario_name, scenario) scale seed vp_idx out all_vps jobs store_dir obs =
  let config =
    config_string ~command:"run" ~scenario:scenario_name ~scale ~seed ~jobs
      [ ("vp", string_of_int vp_idx); ("all_vps", string_of_bool all_vps) ]
  in
  let extra =
    match store_dir with Some d -> [ ("store", d) ] | None -> []
  in
  with_obs obs ~command:"run" ~scale ~jobs ?seed ~config ?out_dir:out ~extra
    (fun () ->
      let params = params_of scenario scale seed in
      let world, _engine, inputs = setup_env params in
      let store = open_store store_dir in
      if all_vps then
        with_jobs jobs (fun pool -> ignore (run_all_vps world inputs store pool))
      else begin
        let vp = pick_vp world vp_idx in
        Printf.printf "running bdrmap from %s...\n%!" vp.Gen.vp_name;
        (* Through execute_all even for one VP: the run gets a private
           engine (same bytes as the historical shared one, which was
           fresh here too) and can be checkpointed/warm-started. *)
        let r =
          match Bdrmap.Pipeline.execute_all ?store world inputs ~vps:[ vp ] with
          | [ r ] -> r
          | runs ->
            prerr_endline
              (Printf.sprintf "bdrmap: run: expected 1 pipeline run for 1 VP, got %d"
                 (List.length runs));
            exit 124
        in
        Format.printf "%a@." Probesim.Scheduler.pp r.collection.sched;
        let t1 =
          Bdrmap.Report.table1 ~rels:inputs.rels ~vp_asns:inputs.vp_asns r.inference
        in
        Bdrmap.Report.print ~title:("bdrmap @ " ^ vp.Gen.vp_name)
          Format.std_formatter t1;
        let s =
          Bdrmap.Validate.summarize (Bdrmap.Validate.links world r.graph r.inference)
        in
        Format.printf "ground truth: %a@." Bdrmap.Validate.pp_summary s;
        let cs = r.Bdrmap.Pipeline.cache in
        Printf.printf
          "engine: %d probes; path cache: %d hits, %d misses, %d evictions, %d \
           entries\n"
          r.Bdrmap.Pipeline.probes cs.Probesim.Engine.hits
          cs.Probesim.Engine.misses cs.Probesim.Engine.evictions
          cs.Probesim.Engine.entries;
        match out with
        | None -> ()
        | Some dir ->
          write_file
            (Filename.concat dir "collection.txt")
            (Bdrmap.Output.collection_to_lines r.collection);
          write_file
            (Filename.concat dir "links.txt")
            (Bdrmap.Output.links_to_lines r.graph r.inference)
      end)

(* infer: re-run inference over a previously saved collection. *)
let infer (scenario_name, scenario) scale seed collection_file obs =
  let config =
    config_string ~command:"infer" ~scenario:scenario_name ~scale ~seed ~jobs:1
      [ ("collection", collection_file) ]
  in
  with_obs obs ~command:"infer" ~scale ~jobs:1 ?seed ~config (fun () ->
      let params = params_of scenario scale seed in
      let _world, _, inputs = setup_env params in
      let ic = open_in collection_file in
      let lines = ref [] in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              lines := input_line ic :: !lines
            done
          with End_of_file -> ());
      match Bdrmap.Output.collection_of_lines (List.rev !lines) with
      | Error e -> prerr_endline e
      | Ok c ->
        let cfg = Bdrmap.Config.default ~vp_asns:inputs.vp_asns in
        let ip2as =
          Bdrmap.Ip2as.create ~rib:inputs.rib ~ixp:inputs.ixp
            ~delegations:inputs.delegations ~vp_asns:inputs.vp_asns
        in
        let g = Bdrmap.Rgraph.build c in
        let inf = Bdrmap.Heuristics.infer cfg ip2as ~rels:inputs.rels g c in
        List.iter print_endline (Bdrmap.Output.links_to_lines g inf);
        Printf.printf "# %d links from %d traces\n" (List.length inf.links)
          (List.length c.traces))

(* experiments: regenerate the paper's tables and figures. Names are
   validated at parse time against this list (keep it in sync with
   [all]/[extra] below), so an unknown name dies in cmdliner with a
   one-line error plus usage, not in the middle of a sweep. *)
let experiment_names =
  [ "table1"; "validation"; "fig14"; "fig15"; "fig16"; "runtime"; "resource";
    "baselines"; "ablation"; "robustness"; "corpus"; "longitudinal" ]

let experiment_conv =
  let parse s =
    if List.mem s experiment_names then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown experiment %S (expected one of %s)" s
             (String.concat ", " experiment_names)))
  in
  Arg.conv (parse, Format.pp_print_string)

let experiments scale names jobs store_dir obs =
  let config =
    config_string ~command:"experiments" ~scenario:"all" ~scale ~seed:None ~jobs
      [ ("names", if names = [] then "default" else String.concat "," names) ]
  in
  let extra =
    ("experiments", if names = [] then "default" else String.concat "," names)
    :: (match store_dir with Some d -> [ ("store", d) ] | None -> [])
  in
  with_obs obs ~command:"experiments" ~scale ~jobs ~config ~extra (fun () ->
      let store = open_store store_dir in
      with_jobs jobs (fun pool ->
          let all =
            [ ("table1", fun () -> Exp_print.table1 scale);
              ("validation", fun () -> Exp_print.validation scale);
              ("fig14", fun () -> Exp_print.fig14 ?pool ?store scale);
              ("fig15", fun () -> Exp_print.fig15 ?pool ?store scale);
              ("fig16", fun () -> Exp_print.fig16 ?pool ?store scale);
              ("runtime", fun () -> Exp_print.runtime scale);
              ("resource", fun () -> Exp_print.resource ?pool ?store scale);
              ("baselines", fun () -> Exp_print.baselines scale);
              ("ablation", fun () -> Exp_print.ablation scale) ]
          in
          (* Opt-in experiments: not part of the default sweep (the fault
             sweep repeats collection five times, and the default run's
             output is a golden artifact downstream). *)
          let extra =
            [ ("robustness", fun () -> Exp_print.robustness scale);
              ("corpus", fun () -> Exp_print.corpus scale);
              ("longitudinal", fun () -> Exp_print.longitudinal scale) ]
          in
          let chosen =
            match names with
            | [] -> all
            | names -> List.filter (fun (n, _) -> List.mem n names) (all @ extra)
          in
          List.iter
            (fun (n, f) ->
              Obs.Log.info "experiment %s" n;
              f ())
            chosen))

(* ------------------------------------------------------------------ *)
(* serve / query / serve-bench: the query service over the inferred    *)
(* border map (ROADMAP open item 1 — the paper's continuously          *)
(* maintained, operator-queryable artifact).                           *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let map_in_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "map" ] ~docv:"FILE"
        ~doc:
          "Serve a border map previously saved with --save-map instead of \
           re-running the inference pipeline (the routing snapshot is still \
           rebuilt from the scenario).")

let save_map_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-map" ] ~docv:"FILE"
        ~doc:"Save the merged border map artifact to $(docv) before serving.")

let load_mapfile ~verb path =
  match Bdrmap.Mapfile.load path with
  | Ok mf ->
    Printf.printf "%s border map %s: %d links, %d origin prefixes\n%!" verb path
      (List.length mf.Bdrmap.Mapfile.merged)
      (List.length mf.Bdrmap.Mapfile.origins);
    Ok mf
  | Error e ->
    Error (Printf.sprintf "%s: %s" path (Bdrmap.Mapfile.error_label e))

(* Build the query map a server answers from: frozen routing snapshot
   plus the all-VP merged border map (computed, or loaded from a saved
   artifact). Returns the snapshot too, so a SIGHUP reload can recompile
   a fresh map against it without re-freezing. *)
let build_qmap (world : Gen.world) store pool map_in save_map =
  let shared = Bdrmap.Pipeline.freeze_routing ?store world in
  let snapshot = shared.Bdrmap.Pipeline.snapshot in
  let mapfile =
    match map_in with
    | Some path -> (
      match load_mapfile ~verb:"loaded" path with
      | Ok mf -> mf
      | Error msg ->
        prerr_endline (Printf.sprintf "bdrmap: serve: %s" msg);
        exit 124)
    | None ->
      let bgp = Routing.Bgp.of_snapshot snapshot in
      let inputs = Bdrmap.Pipeline.inputs_of_world world bgp in
      let merged = run_all_vps ~shared world inputs store pool in
      Bdrmap.Mapfile.make ~host_asns:world.Gen.siblings ~bgp merged
  in
  Option.iter
    (fun path ->
      Bdrmap.Mapfile.save path mapfile;
      Printf.printf "saved border map to %s\n%!" path)
    save_map;
  (snapshot, Serve.Qmap.build ~snapshot mapfile)

let serve (scenario_name, scenario) scale seed jobs store_dir socket map_in save_map
    obs =
  let config =
    config_string ~command:"serve" ~scenario:scenario_name ~scale ~seed ~jobs
      [ ("socket", socket) ]
  in
  with_obs obs ~command:"serve" ~scale ~jobs ?seed ~config (fun () ->
      let params = params_of scenario scale seed in
      let world = Gen.generate params in
      let store = open_store store_dir in
      let snapshot, qmap =
        with_jobs jobs (fun pool -> build_qmap world store pool map_in save_map)
      in
      (* The exposition served on the METRICS opcode: a manifest
         rendered from the live metric shards, converted through the
         existing OpenMetrics pipeline. *)
      let exposition () =
        let text =
          Obs.Manifest.render ~command:"serve" ~scale ~jobs:(resolve_jobs jobs) ?seed
            ~config ()
        in
        match Obs.Json.parse text with
        | Error _ -> "# EOF\n"
        | Ok j -> (
          match Obs.Openmetrics.of_manifest j with
          | Ok t -> t
          | Error _ -> "# EOF\n")
      in
      (* SIGHUP hot-reload: with --map, re-read the (possibly replaced)
         artifact and recompile a Qmap against the frozen snapshot; a
         map that fails to parse keeps the current one serving. Without
         --map, re-run the (store-warm, deterministic) pipeline. Either
         way the swap happens in the event loop without dropping
         connections. *)
      let reload () =
        match map_in with
        | Some path -> (
          match load_mapfile ~verb:"reloaded" path with
          | Ok mf -> Some (Serve.Qmap.build ~snapshot mf)
          | Error msg ->
            prerr_endline
              (Printf.sprintf "bdrmap: serve: reload failed (%s); keeping current map" msg);
            None)
        | None -> Some (snd (build_qmap world store None None None))
      in
      let server = Serve.Server.create ~exposition ~reload ~path:socket qmap in
      let stop_on _ = Serve.Server.stop server in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on);
      Sys.set_signal Sys.sighup
        (Sys.Signal_handle (fun _ -> Serve.Server.request_reload server));
      Printf.printf "serving border map on %s (%d border addresses, host AS%d)\n%!"
        socket
        (Serve.Qmap.border_count qmap)
        (Serve.Qmap.host_asn qmap);
      Serve.Server.run server;
      let st = Serve.Server.stats server in
      Printf.printf
        "served %d queries in %d requests over %d connections (%d errors)\n"
        st.Serve.Server.queries st.Serve.Server.requests st.Serve.Server.connections
        st.Serve.Server.errors)

(* query: one-shot client over a running server's socket. *)
let query socket args =
  let fail msg =
    prerr_endline ("bdrmap: query: " ^ msg);
    exit 124
  in
  let addr_of s =
    match Netcore.Ipv4.of_string s with
    | Some a -> a
    | None -> fail (Printf.sprintf "invalid address %S" s)
  in
  let asn_of s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ -> fail (Printf.sprintf "invalid ASN %S" s)
  in
  match Serve.Client.connect socket with
  | Error e -> fail (Printf.sprintf "%s: %s" socket (Serve.Protocol.error_label e))
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        let check = function
          | Ok v -> v
          | Error e -> fail (Serve.Protocol.error_label e)
        in
        match args with
        | "owner" :: addrs when addrs <> [] ->
          let addrs = List.map addr_of addrs in
          let owners = check (Serve.Client.owner_batch c addrs) in
          List.iter2
            (fun a asn ->
              if asn = 0 then Printf.printf "%s unknown\n" (Netcore.Ipv4.to_string a)
              else Printf.printf "%s AS%d\n" (Netcore.Ipv4.to_string a) asn)
            addrs owners
        | [ "crossings"; a; b ] ->
          let lines = check (Serve.Client.crossings c (asn_of a) (asn_of b)) in
          if lines = [] then Printf.printf "no crossings between %s and %s\n" a b
          else List.iter print_endline lines
        | [ "provenance"; addr ] -> (
          match check (Serve.Client.provenance c (addr_of addr)) with
          | Some line -> print_endline line
          | None -> Printf.printf "%s unknown\n" addr)
        | [ "stats" ] ->
          let s = check (Serve.Client.stats c) in
          Printf.printf "queries %d\nrequests %d\nconnections %d\nerrors %d\n"
            s.Serve.Client.queries s.Serve.Client.requests s.Serve.Client.connections
            s.Serve.Client.errors
        | [ "metrics" ] -> print_string (check (Serve.Client.metrics_text c))
        | _ ->
          fail
            "expected: owner ADDR [ADDR...] | crossings ASN ASN | provenance ADDR \
             | stats | metrics")

let serve_bench (scenario_name, scenario) scale seed jobs store_dir batch seconds obs
    =
  let config =
    config_string ~command:"serve-bench" ~scenario:scenario_name ~scale ~seed ~jobs
      [ ("batch", string_of_int batch) ]
  in
  with_obs obs ~command:"serve-bench" ~scale ~jobs ?seed ~config (fun () ->
      let params = params_of scenario scale seed in
      let world = Gen.generate params in
      let store = open_store store_dir in
      let _, qmap =
        with_jobs jobs (fun pool -> build_qmap world store pool None None)
      in
      let r = Serve.Bench_load.run ~batch ~seconds qmap in
      Serve.Bench_load.print Format.std_formatter r)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the border-map query server: infer (or load) the all-VP merged \
          map, freeze the routing snapshot, and answer owner/crossings/\
          provenance queries over a Unix-domain socket until SIGTERM.")
    Term.(
      const serve $ scenario_arg $ scale_arg $ seed_arg $ jobs_arg $ store_term
      $ socket_arg $ map_in_arg $ save_map_arg $ obs_term)

let query_cmd =
  let args_pos =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:
            "owner ADDR [ADDR...] | crossings ASN ASN | provenance ADDR | stats \
             | metrics")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query a running border-map server.")
    Term.(const query $ socket_arg $ args_pos)

let serve_bench_cmd =
  let batch_arg =
    let batch_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 1 && (n * 4) + 1 <= Serve.Protocol.max_frame -> Ok n
        | Some n -> Error (`Msg (Printf.sprintf "batch out of range: %d" n))
        | None -> Error (`Msg (Printf.sprintf "invalid batch %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(
      value & opt batch_conv 512
      & info [ "batch" ] ~docv:"N" ~doc:"Owner queries per request frame.")
  in
  let seconds_arg =
    Arg.(
      value & opt float 0.5
      & info [ "seconds" ] ~docv:"S" ~doc:"Timed window length.")
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Measure the query server: spin it up in-process, drive batched owner \
          lookups, report qps, round-trip latency quantiles and server-side \
          minor-GC words per query.")
    Term.(
      const serve_bench $ scenario_arg $ scale_arg $ seed_arg $ jobs_arg
      $ store_term $ batch_arg $ seconds_arg $ obs_term)

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a world and write its public input artifacts.")
    Term.(
      const generate $ scenario_arg $ scale_arg $ seed_arg $ out_arg $ obs_term)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the full bdrmap pipeline from a VP (or from every VP with \
          --all-vps, merged into one border map).")
    Term.(
      const run $ scenario_arg $ scale_arg $ seed_arg $ vp_arg $ out_arg
      $ all_vps_arg $ jobs_arg $ store_term $ obs_term)

let infer_cmd =
  let collection_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "collection" ] ~docv:"FILE" ~doc:"Saved collection file.")
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Run border inference over a saved collection.")
    Term.(
      const infer $ scenario_arg $ scale_arg $ seed_arg $ collection_arg $ obs_term)

let experiments_cmd =
  let names_arg =
    Arg.(
      value
      & pos_all experiment_conv []
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Experiments to run (default: all). One of %s."
               (String.concat ", " experiment_names)))
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (default: all).")
    Term.(const experiments $ scale_arg $ names_arg $ jobs_arg $ store_term $ obs_term)

(* store ls / store gc: inspect and prune a run store. These take the
   directory as a required positional/option so they never depend on
   BDRMAP_STORE being set to something unexpected. *)

let store_dir_req =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "BDRMAP_STORE")
        ~doc:"Run store directory.")

let store_ls dir =
  let st = Store.open_dir dir in
  let es = Store.entries st in
  List.iter
    (fun (key, bytes, status) ->
      Printf.printf "%s %10d %s\n" key bytes
        (match status with
        | None -> "ok"
        | Some m -> Store.miss_label m))
    es;
  Printf.printf "%d entries in %s\n" (List.length es) (Store.dir st)

let store_gc all dir obs =
  let config = Printf.sprintf "command=store-gc\ndir=%s\nall=%b" dir all in
  with_obs obs ~command:"store gc" ~scale:1.0 ~jobs:1 ~config (fun () ->
      let st = Store.open_dir dir in
      let stats = Store.gc ~all st in
      Obs.Metrics.add "store.gc.entries_freed" stats.Store.gc_removed;
      Obs.Metrics.add "store.gc.bytes_freed" stats.Store.gc_bytes_freed;
      Printf.printf "%s: removed %d (%d bytes), kept %d\n" (Store.dir st)
        stats.Store.gc_removed stats.Store.gc_bytes_freed stats.Store.gc_kept)

let store_cmd =
  let ls =
    Cmd.v
      (Cmd.info "ls" ~doc:"List store entries with size and validity.")
      Term.(const store_ls $ store_dir_req)
  in
  let gc =
    let all =
      Arg.(
        value & flag
        & info [ "all" ] ~doc:"Remove valid entries too (empty the store).")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Remove invalid entries (truncated, corrupt, stale, foreign \
            version) and orphaned temp files.")
      Term.(const store_gc $ all $ store_dir_req $ obs_term)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and prune a persistent run store.")
    [ ls; gc ]

(* obs report / diff / export: the read side of observability. These
   consume artifacts a previous run wrote (trace JSONL, manifest.json,
   BENCH.json) and never touch the pipeline, so they take plain file
   positionals rather than obs_term. *)

let obs_report canonical path =
  match Obs.Trace_reader.of_file path with
  | Error e ->
    Printf.eprintf "obs report: %s: %s\n" path (Obs.Trace_reader.error_to_string e);
    exit 1
  | Ok t ->
    List.iter print_endline
      (Obs.Trace_reader.report_lines ~volatile:(not canonical)
         (Obs.Trace_reader.summarize t))

let obs_diff wall_ratio rel a b =
  let load path =
    match Obs.Run_diff.of_file path with
    | Ok run -> run
    | Error msg ->
      Printf.eprintf "obs diff: %s: %s\n" path msg;
      exit 1
  in
  let ra = load a and rb = load b in
  if ra.Obs.Run_diff.kind <> rb.Obs.Run_diff.kind then begin
    Printf.eprintf "obs diff: cannot compare %s (%s) against %s (%s)\n" a
      (Obs.Run_diff.kind_label ra.Obs.Run_diff.kind)
      b
      (Obs.Run_diff.kind_label rb.Obs.Run_diff.kind);
    exit 1
  end;
  let findings = Obs.Run_diff.diff ~wall_ratio ~rel ra rb in
  List.iter
    (fun f -> print_endline (Obs.Run_diff.finding_to_string f))
    findings;
  let failing = List.filter Obs.Run_diff.failing findings in
  if failing <> [] then begin
    Printf.printf "FAIL: %d of %d compared series regressed\n"
      (List.length failing)
      (List.length ra.Obs.Run_diff.series);
    exit 1
  end
  else
    Printf.printf "ok: %d series compared, no regressions\n"
      (List.length ra.Obs.Run_diff.series)

let obs_export path =
  match Obs.Openmetrics.of_file path with
  | Ok text -> print_string text
  | Error msg ->
    Printf.eprintf "obs export: %s: %s\n" path msg;
    exit 1

let obs_cmd =
  let trace_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSONL trace written by --trace.")
  in
  let canonical =
    Arg.(
      value & flag
      & info [ "canonical" ]
          ~doc:
            "Omit the wall-clock and GC columns, leaving only \
             deterministic output (for golden fixtures).")
  in
  let report =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Summarize a trace: per-VP / per-stage span tree with wall, \
            simulated-clock and allocation columns, heuristic fire counts \
            and event totals.")
      Term.(const obs_report $ canonical $ trace_pos)
  in
  let diff =
    let file_a =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"BASELINE" ~doc:"Baseline manifest.json or BENCH.json.")
    in
    let file_b =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"CANDIDATE" ~doc:"Candidate manifest.json or BENCH.json.")
    in
    let wall_ratio =
      Arg.(
        value
        & opt float 1.5
        & info [ "wall-ratio" ] ~docv:"R"
            ~doc:
              "Fail a wall-clock / GC series only when the candidate \
               exceeds the baseline by this multiplier (plus a noise floor).")
    in
    let rel =
      Arg.(
        value
        & opt float 0.0
        & info [ "rel" ] ~docv:"R"
            ~doc:
              "Relative tolerance for deterministic series (default 0: \
               exact match required).")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two manifests or two BENCH.json files; exit nonzero \
            and name the offending series on any regression.")
      Term.(const obs_diff $ wall_ratio $ rel $ file_a $ file_b)
  in
  let export =
    let manifest_pos =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"MANIFEST" ~doc:"manifest.json written by a run.")
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:"Render a manifest as OpenMetrics/Prometheus text exposition.")
      Term.(const obs_export $ manifest_pos)
  in
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Analyze observability artifacts from previous runs.")
    [ report; diff; export ]

let main =
  Cmd.group
    (Cmd.info "bdrmap_cli" ~version:"1.0.0"
       ~doc:"bdrmap: inference of borders between IP networks (IMC 2016) on a simulated Internet.")
    [ generate_cmd; run_cmd; infer_cmd; experiments_cmd; serve_cmd; query_cmd;
      serve_bench_cmd; store_cmd; obs_cmd ]

let () = exit (Cmd.eval main)
