(* bdrmap command-line driver: generate a simulated world, run the
   collection/inference pipeline from a VP, validate against ground truth,
   and regenerate the paper's tables and figures. *)

open Cmdliner
module Gen = Topogen.Gen

let scenario_conv =
  let parse s =
    match Topogen.Scenario.by_name s with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown scenario %S (expected r_and_e, large_access, tier1, small_access)"
             s))
  in
  Arg.conv (parse, fun ppf _ -> Format.fprintf ppf "<scenario>")

let scenario_arg =
  Arg.(
    required
    & opt (some scenario_conv) None
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Scenario preset: r_and_e, large_access, tier1 or small_access.")

let scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Scale factor applied to neighbor counts.")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"N" ~doc:"Generator seed (default: the preset's).")

let vp_arg =
  Arg.(
    value & opt int 0
    & info [ "vp" ] ~docv:"I" ~doc:"Vantage point index (default 0).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "BDRMAP_JOBS")
        ~doc:
          "Worker domains for multi-VP work (0 = one per recommended core). \
           Results are byte-identical whatever the value; only wall-clock \
           changes.")

(* 0 (or negative) means auto: one domain per core the runtime
   recommends. A pool is only spun up when it can actually help. *)
let resolve_jobs n = if n >= 1 then n else max 1 (Domain.recommended_domain_count ())

let with_jobs n f =
  let n = resolve_jobs n in
  if n = 1 then f None
  else Netcore.Pool.with_pool ~domains:n (fun pool -> f (Some pool))

let all_vps_arg =
  Arg.(
    value & flag
    & info [ "all-vps" ]
        ~doc:
          "Run the pipeline from every vantage point (in parallel under \
           --jobs) and merge the per-VP inferences into one border map.")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Directory for output artifacts.")

type scenario_fn = ?scale:float -> ?seed:int -> unit -> Gen.params

let params_of (scenario : scenario_fn) scale seed =
  match seed with
  | Some seed -> scenario ~scale ~seed ()
  | None -> scenario ~scale ()

let write_file path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n%!" path (List.length lines)

let setup_env params =
  let world = Gen.generate params in
  let bgp, fwd, engine, inputs = Bdrmap.Pipeline.setup world in
  ignore fwd;
  ignore bgp;
  (world, engine, inputs)

(* generate: emit the public input artifacts of §5.2. *)
let generate scenario scale seed out =
  let params = params_of scenario scale seed in
  let world, _, inputs = setup_env params in
  let dir = Option.value ~default:"." out in
  write_file (Filename.concat dir "rib.txt") (Bgpdata.Rib.to_lines inputs.rib);
  write_file (Filename.concat dir "as-rel.txt") (Bgpdata.As_rel.to_lines inputs.rels);
  write_file (Filename.concat dir "ixp.txt") (Bgpdata.Ixp.to_lines inputs.ixp);
  write_file
    (Filename.concat dir "delegations.txt")
    (Bgpdata.Delegation.to_lines inputs.delegations);
  write_file (Filename.concat dir "as2org.txt") (Bgpdata.As2org.to_lines world.as2org);
  write_file
    (Filename.concat dir "vp-asns.txt")
    (List.map string_of_int (Netcore.Asn.Set.elements world.siblings));
  Printf.printf "world: %d ASes, %d routers, %d links, %d VPs\n"
    (List.length (Topogen.Net.ases world.net))
    (Topogen.Net.router_count world.net)
    (Topogen.Net.link_count world.net)
    (List.length world.vps)

let pick_vp (world : Gen.world) i =
  match List.nth_opt world.vps i with
  | Some vp -> vp
  | None -> failwith (Printf.sprintf "vp index %d out of range (%d VPs)" i (List.length world.vps))

(* run --all-vps: the deployed-system mode — every VP's pipeline on the
   domain pool, merged into one network-wide border map. *)
let run_all_vps world inputs pool =
  let vps = world.Gen.vps in
  let domains = match pool with Some p -> Netcore.Pool.size p | None -> 1 in
  Printf.printf "running bdrmap from %d VPs on %d domain%s...\n%!" (List.length vps)
    domains
    (if domains = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let runs = Bdrmap.Pipeline.execute_all ?pool world inputs ~vps in
  let merged =
    Bdrmap.Aggregate.merge_runs ?pool
      (List.map2
         (fun (vp : Gen.vp) (r : Bdrmap.Pipeline.run) ->
           (vp.Gen.vp_name, r.Bdrmap.Pipeline.graph, r.Bdrmap.Pipeline.inference))
         vps runs)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%d merged links across %d VPs in %.1fs\n" (List.length merged)
    (List.length vps) dt;
  let by_neighbor = Bdrmap.Aggregate.per_neighbor merged in
  List.iteri
    (fun i (asn, n) ->
      if i < 15 then Printf.printf "  AS%-8d %4d link%s\n" asn n (if n = 1 then "" else "s"))
    by_neighbor;
  if List.length by_neighbor > 15 then
    Printf.printf "  ... and %d more neighbors\n" (List.length by_neighbor - 15);
  let mu =
    Bdrmap.Aggregate.marginal_utility
      ~vp_order:(List.map (fun (vp : Gen.vp) -> vp.Gen.vp_name) vps)
      merged
  in
  Printf.printf "cumulative links by #VPs:";
  List.iter (Printf.printf " %d") mu;
  print_newline ()

(* run: the full pipeline, with validation and Table-1 reporting. *)
let run scenario scale seed vp_idx out all_vps jobs =
  let params = params_of scenario scale seed in
  let world, engine, inputs = setup_env params in
  if all_vps then with_jobs jobs (run_all_vps world inputs)
  else
  let vp = pick_vp world vp_idx in
  Printf.printf "running bdrmap from %s...\n%!" vp.Gen.vp_name;
  let r = Bdrmap.Pipeline.execute engine inputs ~vp in
  Format.printf "%a@." Probesim.Scheduler.pp r.collection.sched;
  let t1 = Bdrmap.Report.table1 ~rels:inputs.rels ~vp_asns:inputs.vp_asns r.inference in
  Bdrmap.Report.print ~title:("bdrmap @ " ^ vp.Gen.vp_name) Format.std_formatter t1;
  let s = Bdrmap.Validate.summarize (Bdrmap.Validate.links world r.graph r.inference) in
  Format.printf "ground truth: %a@." Bdrmap.Validate.pp_summary s;
  match out with
  | None -> ()
  | Some dir ->
    write_file
      (Filename.concat dir "collection.txt")
      (Bdrmap.Output.collection_to_lines r.collection);
    write_file
      (Filename.concat dir "links.txt")
      (Bdrmap.Output.links_to_lines r.graph r.inference)

(* infer: re-run inference over a previously saved collection. *)
let infer scenario scale seed collection_file =
  let params = params_of scenario scale seed in
  let _world, _, inputs = setup_env params in
  let ic = open_in collection_file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  match Bdrmap.Output.collection_of_lines (List.rev !lines) with
  | Error e -> prerr_endline e
  | Ok c ->
    let cfg = Bdrmap.Config.default ~vp_asns:inputs.vp_asns in
    let ip2as =
      Bdrmap.Ip2as.create ~rib:inputs.rib ~ixp:inputs.ixp
        ~delegations:inputs.delegations ~vp_asns:inputs.vp_asns
    in
    let g = Bdrmap.Rgraph.build c in
    let inf = Bdrmap.Heuristics.infer cfg ip2as ~rels:inputs.rels g c in
    List.iter print_endline (Bdrmap.Output.links_to_lines g inf);
    Printf.printf "# %d links from %d traces\n"
      (List.length inf.links) (List.length c.traces)

(* experiments: regenerate the paper's tables and figures. *)
let experiments scale names jobs =
  with_jobs jobs (fun pool ->
      let all =
        [ ("table1", fun () -> Exp_print.table1 scale);
          ("validation", fun () -> Exp_print.validation scale);
          ("fig14", fun () -> Exp_print.fig14 ?pool scale);
          ("fig15", fun () -> Exp_print.fig15 ?pool scale);
          ("fig16", fun () -> Exp_print.fig16 ?pool scale);
          ("runtime", fun () -> Exp_print.runtime scale);
          ("resource", fun () -> Exp_print.resource ?pool scale);
          ("baselines", fun () -> Exp_print.baselines scale);
          ("ablation", fun () -> Exp_print.ablation scale) ]
      in
      (* Opt-in experiments: not part of the default sweep (the fault
         sweep repeats collection five times, and the default run's
         output is a golden artifact downstream). *)
      let extra = [ ("robustness", fun () -> Exp_print.robustness scale) ] in
      let chosen =
        match names with
        | [] -> all
        | names -> List.filter (fun (n, _) -> List.mem n names) (all @ extra)
      in
      if chosen = [] then prerr_endline "no matching experiments"
      else List.iter (fun (_, f) -> f ()) chosen)

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a world and write its public input artifacts.")
    Term.(const generate $ scenario_arg $ scale_arg $ seed_arg $ out_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the full bdrmap pipeline from a VP (or from every VP with \
          --all-vps, merged into one border map).")
    Term.(
      const run $ scenario_arg $ scale_arg $ seed_arg $ vp_arg $ out_arg
      $ all_vps_arg $ jobs_arg)

let infer_cmd =
  let collection_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "collection" ] ~docv:"FILE" ~doc:"Saved collection file.")
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Run border inference over a saved collection.")
    Term.(const infer $ scenario_arg $ scale_arg $ seed_arg $ collection_arg)

let experiments_cmd =
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc:"Experiments to run.")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (default: all).")
    Term.(const experiments $ scale_arg $ names_arg $ jobs_arg)

let main =
  Cmd.group
    (Cmd.info "bdrmap_cli" ~version:"1.0.0"
       ~doc:"bdrmap: inference of borders between IP networks (IMC 2016) on a simulated Internet.")
    [ generate_cmd; run_cmd; infer_cmd; experiments_cmd ]

let () = exit (Cmd.eval main)
