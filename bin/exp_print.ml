(* Experiment runners shared by the CLI and the bench harness. *)

let table1 scale =
  Experiments.Exp_table1.print Format.std_formatter
    (Experiments.Exp_table1.run ~scale ())

let validation scale =
  Experiments.Exp_validation.print Format.std_formatter
    (Experiments.Exp_validation.run ~scale ())

let fig14 ?pool ?store scale =
  Experiments.Exp_fig14.print Format.std_formatter
    (Experiments.Exp_fig14.run ~scale ?pool ?store ())

let fig15 ?pool ?store scale =
  Experiments.Exp_fig15.print Format.std_formatter
    (Experiments.Exp_fig15.run ~scale ?pool ?store ())

let fig16 ?pool ?store scale =
  Experiments.Exp_fig16.print Format.std_formatter
    (Experiments.Exp_fig16.run ~scale ?pool ?store ())

let runtime scale =
  Experiments.Exp_runtime.print Format.std_formatter
    (Experiments.Exp_runtime.run ~scale ())

let resource ?pool ?store scale =
  match Experiments.Exp_resource.run ~scale ?pool ?store () with
  | Ok t -> Experiments.Exp_resource.print Format.std_formatter t
  | Error e ->
    prerr_endline ("bdrmap: " ^ Experiments.Exp_resource.error_to_string e);
    exit 124

let ablation scale =
  Experiments.Exp_ablation.print Format.std_formatter
    (Experiments.Exp_ablation.run ~scale ())

let baselines scale =
  Experiments.Exp_baselines.print Format.std_formatter
    (Experiments.Exp_baselines.run ~scale ())

let robustness scale =
  Experiments.Exp_robustness.print Format.std_formatter
    (Experiments.Exp_robustness.run ~scale ())

let corpus scale =
  Experiments.Exp_corpus.print Format.std_formatter
    (Experiments.Exp_corpus.run ~scale ())

let longitudinal scale =
  Experiments.Exp_longitudinal.print Format.std_formatter
    (Experiments.Exp_longitudinal.run ~scale ())
