(* Post-hoc assertions over a bench-quick BENCH.json, attached to the
   runtest alias: the snapshot must have been built at most once per
   multi-VP sweep (a per-worker rebuild would show builds exceeding the
   sweep count), every computed VP must have attached to a shared
   snapshot, the schema-7 GC fields must be present, the packed
   scale-3 snapshot rows must show a warm query sweep that stays inside
   a near-zero GC major-words budget — the regression gate for the
   route arenas staying GC-invisible — and every adversarial corpus
   scenario must hold its recorded accuracy floor, the regression gate
   for inference *quality*. Plain string scanning — the
   emitter writes one object per line, and pulling in a JSON parser for
   a handful of assertions is not worth a dependency. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then false else String.sub s i m = sub || go (i + 1) in
  m = 0 || go 0

let find_marker json marker =
  let n = String.length json and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub json i m = marker then Some (i + m)
    else find (i + 1)
  in
  find 0

let int_at json i =
  let n = String.length json in
  let j = ref i in
  while !j < n && json.[!j] >= '0' && json.[!j] <= '9' do incr j done;
  int_of_string (String.sub json i (!j - i))

(* The metrics block emits counters as
   {"name": "<name>", "total": <n>}; absent counter = 0. *)
let counter json name =
  match find_marker json (Printf.sprintf "{\"name\": \"%s\", \"total\": " name) with
  | None -> 0
  | Some i -> int_at json i

(* Experiments rows are one object per line; numeric GC fields are
   emitted as %.0f, so an integer prefix scan reads them exactly. *)
let row_field json ~row ~field =
  match find_marker json (Printf.sprintf "{\"name\": \"%s\", " row) with
  | None -> None
  | Some i -> (
    let line_end =
      match String.index_from_opt json i '\n' with
      | Some e -> e
      | None -> String.length json
    in
    let line = String.sub json i (line_end - i) in
    match find_marker line (Printf.sprintf "\"%s\": " field) with
    | None -> None
    | Some j -> Some (int_at line j))

(* Floats are emitted as %.2f; scan sign, digits and one dot. *)
let float_at json i =
  let n = String.length json in
  let j = ref i in
  if !j < n && (json.[!j] = '-' || json.[!j] = '+') then incr j;
  while
    !j < n && ((json.[!j] >= '0' && json.[!j] <= '9') || json.[!j] = '.')
  do
    incr j
  done;
  float_of_string (String.sub json i (!j - i))

(* Corpus rows are one object per line:
   {"scenario": "<name>", "links_pct": ..., "links_floor": ..., ...}. *)
let corpus_row_float line ~field =
  match find_marker line (Printf.sprintf "\"%s\": " field) with
  | None -> fail "corpus row %S lacks field %S" line field
  | Some j -> float_at line j

let check_corpus json =
  let rec rows i acc =
    match find_marker (String.sub json i (String.length json - i)) "{\"scenario\": \"" with
    | None -> acc
    | Some off ->
      let start = i + off in
      let line_end =
        match String.index_from_opt json start '\n' with
        | Some e -> e
        | None -> String.length json
      in
      rows line_end (String.sub json (start - 14) (line_end - start + 14) :: acc)
  in
  let rows = List.rev (rows 0 []) in
  if List.length rows < 8 then
    fail "only %d corpus scenario rows (expected the full registry, >= 8)"
      (List.length rows);
  List.iter
    (fun line ->
      let name =
        match find_marker line "{\"scenario\": \"" with
        | None -> fail "malformed corpus row %S" line
        | Some j -> (
          match String.index_from_opt line j '"' with
          | None -> fail "malformed corpus row %S" line
          | Some e -> String.sub line j (e - j))
      in
      let links = corpus_row_float line ~field:"links_pct" in
      let links_floor = corpus_row_float line ~field:"links_floor" in
      let routers = corpus_row_float line ~field:"routers_pct" in
      let routers_floor = corpus_row_float line ~field:"routers_floor" in
      if links < links_floor then
        fail
          "corpus scenario %S: link accuracy %.2f%% fell below its floor %.2f%%"
          name links links_floor;
      if routers < routers_floor then
        fail
          "corpus scenario %S: router accuracy %.2f%% fell below its floor %.2f%%"
          name routers routers_floor)
    rows;
  List.length rows

(* Budget for GC major-heap allocation during the warm packed-snapshot
   query sweep: the sweep reads only Bigarray words through the
   zero-allocation slot layer, so anything beyond incidental noise
   (boxed floats from the Gc stat calls themselves) means the packed
   representation regressed to heap-visible storage. *)
let warm_sweep_major_budget = 50_000

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH.json" in
  let json = read_file path in
  if not (contains ~sub:"\"schema\": \"bdrmap-bench/7\"" json) then
    fail "schema is not bdrmap-bench/7";
  List.iter
    (fun field ->
      if not (contains ~sub:(Printf.sprintf "\"%s\":" field) json) then
        fail "experiments rows are missing the GC counter field %S" field)
    [ "gc_minor_words"; "gc_major_words"; "gc_heap_words"; "gc_compactions" ];
  if not (contains ~sub:"\"stage\": \"freeze\"" json) then
    fail "no \"freeze\" stage row: snapshot freeze was never traced";
  (match row_field json ~row:"snapshot3-freeze" ~field:"gc_heap_words" with
  | None -> fail "no \"snapshot3-freeze\" row: the scale-3 packed freeze never ran"
  | Some _ -> ());
  (match row_field json ~row:"snapshot3-query-sweep-warm" ~field:"gc_major_words" with
  | None ->
    fail "no \"snapshot3-query-sweep-warm\" row: the packed query sweep never ran"
  | Some major ->
    if major > warm_sweep_major_budget then
      fail
        "warm packed query sweep allocated %d GC major words (budget %d): the \
         route arena is no longer GC-invisible"
        major warm_sweep_major_budget);
  let builds = counter json "routing.snapshot.builds" in
  let attaches = counter json "routing.snapshot.attaches" in
  let sweeps = counter json "pipeline.sweeps" in
  let crossing = counter json "pipeline.crossing_sweeps" in
  let vp_computes = counter json "pipeline.vp_computes" in
  if builds < 1 then fail "snapshot was never built (routing.snapshot.builds = 0)";
  (* The two standalone freezes (snapshot-freeze, snapshot3-freeze) are
     deliberate builds outside any sweep. *)
  if builds > sweeps + crossing + 2 then
    fail
      "snapshot rebuilt per worker: %d builds for %d execute_all sweeps + %d pooled \
       crossing sweeps (+2 standalone freezes)"
      builds sweeps crossing;
  if vp_computes > 0 && attaches < vp_computes then
    fail "%d computed VPs but only %d snapshot attaches — a worker bypassed the shared snapshot"
      vp_computes attaches;
  let corpus_rows = check_corpus json in
  Printf.printf
    "check_bench: ok (%d builds / %d sweeps, %d attaches / %d VP computes, warm \
     sweep within %d major-word budget, %d corpus scenarios above their floors)\n"
    builds (sweeps + crossing) attaches vp_computes warm_sweep_major_budget
    corpus_rows
