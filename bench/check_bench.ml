(* Post-hoc assertions over a bench-quick BENCH.json, attached to the
   runtest alias: the snapshot must have been built at most once per
   multi-VP sweep (a per-worker rebuild would show builds exceeding the
   sweep count), every computed VP must have attached to a shared
   snapshot, and the schema-5 GC fields must be present. Plain string
   scanning — the emitter writes one object per line, and pulling in a
   JSON parser for five assertions is not worth a dependency. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then false else String.sub s i m = sub || go (i + 1) in
  m = 0 || go 0

(* The metrics block emits counters as
   {"name": "<name>", "total": <n>}; absent counter = 0. *)
let counter json name =
  let marker = Printf.sprintf "{\"name\": \"%s\", \"total\": " name in
  let n = String.length json and m = String.length marker in
  let rec find i = if i + m > n then None else if String.sub json i m = marker then Some (i + m) else find (i + 1) in
  match find 0 with
  | None -> 0
  | Some i ->
    let j = ref i in
    while !j < n && json.[!j] >= '0' && json.[!j] <= '9' do incr j done;
    int_of_string (String.sub json i (!j - i))

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH.json" in
  let json = read_file path in
  if not (contains ~sub:"\"schema\": \"bdrmap-bench/5\"" json) then
    fail "schema is not bdrmap-bench/5";
  List.iter
    (fun field ->
      if not (contains ~sub:(Printf.sprintf "\"%s\":" field) json) then
        fail "experiments rows are missing the GC counter field %S" field)
    [ "gc_minor_words"; "gc_major_words"; "gc_compactions" ];
  if not (contains ~sub:"\"stage\": \"freeze\"" json) then
    fail "no \"freeze\" stage row: snapshot freeze was never traced";
  let builds = counter json "routing.snapshot.builds" in
  let attaches = counter json "routing.snapshot.attaches" in
  let sweeps = counter json "pipeline.sweeps" in
  let crossing = counter json "pipeline.crossing_sweeps" in
  let vp_computes = counter json "pipeline.vp_computes" in
  if builds < 1 then fail "snapshot was never built (routing.snapshot.builds = 0)";
  if builds > sweeps + crossing then
    fail
      "snapshot rebuilt per worker: %d builds for %d execute_all sweeps + %d pooled \
       crossing sweeps"
      builds sweeps crossing;
  if vp_computes > 0 && attaches < vp_computes then
    fail "%d computed VPs but only %d snapshot attaches — a worker bypassed the shared snapshot"
      vp_computes attaches;
  Printf.printf
    "check_bench: ok (%d builds / %d sweeps, %d attaches / %d VP computes)\n" builds
    (sweeps + crossing) attaches vp_computes
