(* Post-hoc assertions over a bench-quick BENCH.json, attached to the
   runtest alias: the snapshot must have been built at most once per
   multi-VP sweep (a per-worker rebuild would show builds exceeding the
   sweep count), every computed VP must have attached to a shared
   snapshot, the per-stage and per-experiment GC columns must be
   present, the packed scale-3 snapshot rows must show a warm query
   sweep that stays inside a near-zero GC major-words budget — the
   regression gate for the route arenas staying GC-invisible — and
   every adversarial corpus scenario must hold its recorded accuracy
   floor, the regression gate for inference *quality*. The serve rows
   must show the query server sustaining its throughput floor with a
   sane latency ordering and a near-zero steady-state allocation rate —
   the regression gate for the query hot loop staying allocation-free.
   The artifact is read through the obs read side (Obs.Run_diff
   flattens it into named series), so these gates and `bdrmap obs diff`
   agree on what a series is called and what it contains. *)

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

(* Budget for GC major-heap allocation during the warm packed-snapshot
   query sweep: the sweep reads only Bigarray words through the
   zero-allocation slot layer, so anything beyond incidental noise
   (boxed floats from the Gc stat calls themselves) means the packed
   representation regressed to heap-visible storage. *)
let warm_sweep_major_budget = 50_000

(* Floors for the query-server rows. The batch-512 row sustains several
   million lookups/sec on the bench box; the floor is set an order of
   magnitude below the observed rate so it catches a real regression
   (a boxing bug or per-query allocation re-appearing costs 10x-100x),
   not scheduler noise on a loaded CI machine. Allocation is gated per
   frame: the server allocates a bounded constant per request (metrics
   recording), and the per-query path contributes nothing — so
   words/query x batch must stay under one frame's budget at both
   batch sizes. At batch 512 that bound also forces the amortized
   per-query rate under ~0.2 words. *)
let serve_qps_floor = 250_000.0
let serve_frame_words_budget = 100.0

(* Floor for the incremental re-freeze on single-link churn: a link
   add/remove dirties zero prefixes, so the incremental path does a
   constant amount of work where the full freeze re-propagates every
   route. 5x is the contract; the observed gap at scale 1 is orders of
   magnitude wider, so this catches the incremental path silently
   degrading to a full recompute, not timer noise. *)
let churn_speedup_floor = 5.0

let has_suffix suffix name =
  let n = String.length name and m = String.length suffix in
  n >= m && String.sub name (n - m) m = suffix

let has_prefix prefix name =
  let n = String.length name and m = String.length prefix in
  n >= m && String.sub name 0 m = prefix

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH.json" in
  let run =
    match Obs.Run_diff.of_file path with
    | Ok r -> r
    | Error e -> fail "%s" e
  in
  if run.Obs.Run_diff.kind <> Obs.Run_diff.Bench then
    fail "%s parsed, but not as a BENCH.json" path;
  if run.Obs.Run_diff.schema <> "bdrmap-bench/10" then
    fail "schema is %S, not bdrmap-bench/10" run.Obs.Run_diff.schema;
  let series = run.Obs.Run_diff.series in
  let get name = List.assoc_opt name series in
  let geti name = Option.map (fun f -> int_of_float f) (get name) in
  let counter name = Option.value ~default:0 (geti ("metric." ^ name ^ ".total")) in
  (* A run must diff clean against itself: if the flattening ever
     produces duplicate or unstable series, every downstream
     `obs diff` verdict is suspect. *)
  (match Obs.Run_diff.regressions (Obs.Run_diff.diff run run) with
  | [] -> ()
  | f :: _ ->
    fail "self-diff is not clean (series %S): flattening is unstable"
      f.Obs.Run_diff.f_name);
  (* Experiment rows carry the GC counter columns. *)
  List.iter
    (fun field ->
      if
        not
          (List.exists
             (fun (n, _) -> has_prefix "experiment." n && has_suffix ("." ^ field) n)
             series)
      then fail "experiment rows are missing the GC counter field %S" field)
    [ "gc_minor_words"; "gc_major_words"; "gc_heap_words"; "gc_compactions" ];
  (* Stage rows carry the new per-stage allocation columns, and the
     freeze stage was traced at all. *)
  if get "stage.freeze.count" = None then
    fail "no \"freeze\" stage row: snapshot freeze was never traced";
  List.iter
    (fun field ->
      if get ("stage.freeze." ^ field) = None then
        fail "stage rows are missing the per-stage allocation column %S" field)
    [ "gc_minor_words"; "gc_major_words"; "gc_compactions" ];
  (* Histogram metric rows must carry their derived percentiles. *)
  List.iter
    (fun (name, count) ->
      if count > 0.0 then
        let base = String.sub name 0 (String.length name - String.length ".count") in
        if get (base ^ ".p50") = None then
          fail "histogram series %S has %g observations but no p50 column" name count)
    (List.filter
       (fun (n, _) -> has_prefix "metric." n && has_suffix ".count" n)
       series);
  (* The packed scale-3 snapshot gates. *)
  if get "experiment.snapshot3-freeze.gc_heap_words" = None then
    fail "no \"snapshot3-freeze\" row: the scale-3 packed freeze never ran";
  (match geti "experiment.snapshot3-query-sweep-warm.gc_major_words" with
  | None ->
    fail "no \"snapshot3-query-sweep-warm\" row: the packed query sweep never ran"
  | Some major ->
    if major > warm_sweep_major_budget then
      fail
        "warm packed query sweep allocated %d GC major words (budget %d): the \
         route arena is no longer GC-invisible"
        major warm_sweep_major_budget);
  let builds = counter "routing.snapshot.builds" in
  let attaches = counter "routing.snapshot.attaches" in
  let sweeps = counter "pipeline.sweeps" in
  let crossing = counter "pipeline.crossing_sweeps" in
  let vp_computes = counter "pipeline.vp_computes" in
  if builds < 1 then fail "snapshot was never built (routing.snapshot.builds = 0)";
  (* The two standalone freezes (snapshot-freeze, snapshot3-freeze) are
     deliberate builds outside any sweep. *)
  if builds > sweeps + crossing + 2 then
    fail
      "snapshot rebuilt per worker: %d builds for %d execute_all sweeps + %d pooled \
       crossing sweeps (+2 standalone freezes)"
      builds sweeps crossing;
  if vp_computes > 0 && attaches < vp_computes then
    fail
      "%d computed VPs but only %d snapshot attaches — a worker bypassed the \
       shared snapshot"
      vp_computes attaches;
  (* Corpus accuracy floors, enumerated from the flattened series. *)
  let scenarios =
    List.filter_map
      (fun (n, _) ->
        if has_prefix "corpus." n && has_suffix ".links_pct" n then
          Some (String.sub n 7 (String.length n - 7 - String.length ".links_pct"))
        else None)
      series
  in
  if List.length scenarios < 8 then
    fail "only %d corpus scenario rows (expected the full registry, >= 8)"
      (List.length scenarios);
  List.iter
    (fun s ->
      let f field =
        match get (Printf.sprintf "corpus.%s.%s" s field) with
        | Some v -> v
        | None -> fail "corpus scenario %S lacks field %S" s field
      in
      if f "links_pct" < f "links_floor" then
        fail "corpus scenario %S: link accuracy %.2f%% fell below its floor %.2f%%"
          s (f "links_pct") (f "links_floor");
      if f "routers_pct" < f "routers_floor" then
        fail "corpus scenario %S: router accuracy %.2f%% fell below its floor %.2f%%"
          s (f "routers_pct") (f "routers_floor"))
    scenarios;
  (* Temporal-churn rows: the single-link event classes are the
     headline case for the incremental path — zero dirty prefixes, so
     the re-freeze must beat the full freeze by at least the contract
     factor. Rows for these classes are mandatory: the scale-1 bench
     world always has an eligible site for a link add and remove, so a
     missing row means the churn bench silently skipped them. *)
  let churn_field row field =
    match get (Printf.sprintf "churn.%s.%s" row field) with
    | Some v -> v
    | None -> fail "churn row %S lacks field %S (did the churn bench run?)" row field
  in
  let churn_speedups =
    List.map
      (fun row ->
        let full = churn_field row "full_wall_s"
        and incr = churn_field row "incr_wall_s" in
        let speedup = full /. Float.max 1e-9 incr in
        if speedup < churn_speedup_floor then
          fail
            "churn class %S: incremental re-freeze only %.1fx faster than a \
             full freeze (floor %.0fx) — the incremental path degraded toward \
             a full recompute"
            row speedup churn_speedup_floor;
        speedup)
      [ "link_add"; "link_remove" ]
  in
  (* Longitudinal accuracy floor: churn across epochs must not erode
     the inferred border map below the recorded floor. *)
  let epochs =
    List.filter_map
      (fun (n, _) ->
        if has_prefix "longitudinal." n && has_suffix ".links_pct" n then
          Some (String.sub n 13 (String.length n - 13 - String.length ".links_pct"))
        else None)
      series
  in
  if epochs = [] then
    fail "no longitudinal epoch rows: the epoch loop never ran";
  List.iter
    (fun e ->
      let f field =
        match get (Printf.sprintf "longitudinal.%s.%s" e field) with
        | Some v -> v
        | None -> fail "longitudinal epoch %s lacks field %S" e field
      in
      if f "links_pct" < f "links_floor" then
        fail
          "longitudinal epoch %s: link accuracy %.2f%% fell below the %.2f%% \
           floor — churn is eroding inference quality"
          e (f "links_pct") (f "links_floor"))
    epochs;
  (* Query-server rows: sustained throughput, sane latency ordering,
     and the steady-state allocation rate the zero-alloc hot loop is
     supposed to hold. *)
  let serve_field row field =
    match get (Printf.sprintf "serve.%s.%s" row field) with
    | Some v -> v
    | None -> fail "serve row %S lacks field %S (did the load run?)" row field
  in
  let serve_qps =
    List.map
      (fun row ->
        if serve_field row "queries" <= 0.0 then
          fail "serve row %S recorded zero queries" row;
        let p50 = serve_field row "rtt_p50_us"
        and p99 = serve_field row "rtt_p99_us" in
        if p50 > p99 then
          fail "serve row %S: rtt p50 %.1fus exceeds p99 %.1fus" row p50 p99;
        let frame_words =
          serve_field row "minor_words_per_query" *. serve_field row "batch"
        in
        if frame_words > serve_frame_words_budget then
          fail
            "serve row %S allocates %.1f minor words/frame (budget %.0f): the \
             query hot loop is no longer allocation-free"
            row frame_words serve_frame_words_budget;
        serve_field row "qps")
      [ "owner-batch512"; "owner-batch1" ]
  in
  (match serve_qps with
  | batched :: _ when batched < serve_qps_floor ->
    fail "serve owner-batch512 sustained %.0f qps, below the %.0f floor" batched
      serve_qps_floor
  | _ -> ());
  Printf.printf
    "check_bench: ok (%d builds / %d sweeps, %d attaches / %d VP computes, warm \
     sweep within %d major-word budget, %d corpus scenarios above their floors, \
     serve at %s qps, single-link churn re-freeze %s faster, %d longitudinal \
     epochs above the accuracy floor)\n"
    builds (sweeps + crossing) attaches vp_computes warm_sweep_major_budget
    (List.length scenarios)
    (match serve_qps with
    | batched :: _ -> Printf.sprintf "%.0f" batched
    | [] -> "?")
    (match churn_speedups with
    | s :: _ -> Printf.sprintf "%.0fx" s
    | [] -> "?")
    (List.length epochs)
