(* Benchmark harness: regenerates every table and figure from the paper's
   evaluation (one section per artifact), then times the pipeline stages
   with bechamel.

   Scale with BDRMAP_BENCH_SCALE (default 1.0 = paper-sized scenarios;
   0.1-0.3 for a quick pass). *)

open Bechamel
open Toolkit

let scale =
  match Sys.getenv_opt "BDRMAP_BENCH_SCALE" with
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f > 0.0 -> f
    | _ -> 1.0)
  | None -> 1.0

let banner title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let experiments () =
  banner (Printf.sprintf "bdrmap evaluation reproduction (scale %.2f)" scale);
  banner "Table 1 (5.7): BGP coverage and heuristic breakdown";
  Experiments.Exp_table1.print Format.std_formatter (Experiments.Exp_table1.run ~scale ());
  banner "5.6: validation against ground truth";
  Experiments.Exp_validation.print Format.std_formatter
    (Experiments.Exp_validation.run ~scale ());
  banner "Figure 14: border router / next-hop AS diversity";
  Experiments.Exp_fig14.print Format.std_formatter (Experiments.Exp_fig14.run ~scale ());
  banner "Figure 15: marginal utility of VPs";
  Experiments.Exp_fig15.print Format.std_formatter (Experiments.Exp_fig15.run ~scale ());
  banner "Figure 16: VP geography vs observed links";
  Experiments.Exp_fig16.print Format.std_formatter (Experiments.Exp_fig16.run ~scale ());
  banner "5.3: run-time and stop-set ablation";
  Experiments.Exp_runtime.print Format.std_formatter
    (Experiments.Exp_runtime.run ~scale ());
  banner "5.8: resource-limited deployment";
  Experiments.Exp_resource.print Format.std_formatter
    (Experiments.Exp_resource.run ~scale ());
  banner "Baseline comparison (3)";
  Experiments.Exp_baselines.print Format.std_formatter
    (Experiments.Exp_baselines.run ~scale ());
  banner "Design ablations";
  Experiments.Exp_ablation.print Format.std_formatter
    (Experiments.Exp_ablation.run ~scale ())

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the pipeline stages.                            *)

module Gen = Topogen.Gen
open Netcore

let micro_env =
  lazy
    (let world = Gen.generate Topogen.Scenario.tiny in
     let bgp, fwd, engine, inputs = Bdrmap.Pipeline.setup world in
     let vp = List.hd world.vps in
     let run = Bdrmap.Pipeline.execute engine inputs ~vp in
     (world, bgp, fwd, engine, inputs, vp, run))

let test_ptrie_lpm =
  Test.make ~name:"ptrie-lpm"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, _ = Lazy.force micro_env in
         ignore (Bgpdata.Rib.origin_asns inputs.rib (Ipv4.of_string_exn "1.40.0.77"))))

let test_targets =
  Test.make ~name:"target-blocks"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, _ = Lazy.force micro_env in
         ignore (Bdrmap.Targets.blocks ~rib:inputs.rib ~vp_asns:inputs.vp_asns)))

let test_bgp_route =
  Test.make ~name:"bgp-route-lookup"
    (Staged.stage (fun () ->
         let _, bgp, _, _, _, _, _ = Lazy.force micro_env in
         let prefixes = Routing.Bgp.prefixes bgp in
         let p = List.nth prefixes (List.length prefixes / 2) in
         ignore (Routing.Bgp.route bgp 64500 p)))

let test_forwarding_path =
  Test.make ~name:"forwarding-path"
    (Staged.stage (fun () ->
         let _, _, fwd, _, _, vp, _ = Lazy.force micro_env in
         ignore
           (Routing.Forwarding.path fwd ~src_rid:vp.Gen.vp_rid
              ~dst:(Ipv4.of_string_exn "1.40.0.77") ())))

let test_traceroute =
  Test.make ~name:"engine-traceroute"
    (Staged.stage (fun () ->
         let _, _, _, engine, _, vp, _ = Lazy.force micro_env in
         ignore (Probesim.Engine.traceroute engine ~vp ~dst:(Ipv4.of_string_exn "1.40.0.77") ())))

let test_heuristics =
  Test.make ~name:"heuristics-infer"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, run = Lazy.force micro_env in
         ignore
           (Bdrmap.Heuristics.infer run.Bdrmap.Pipeline.cfg run.Bdrmap.Pipeline.ip2as
              ~rels:inputs.rels run.Bdrmap.Pipeline.graph run.Bdrmap.Pipeline.collection)))

let test_rel_infer =
  Test.make ~name:"rel-infer"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, _ = Lazy.force micro_env in
         ignore (Bgpdata.Rel_infer.infer (Bgpdata.Rib.all_paths inputs.rib))))

let test_ally =
  Test.make ~name:"ally-trial"
    (Staged.stage (fun () ->
         let c = ref 0 in
         let sampler _ =
           incr c;
           Some (!c land 0xFFFF)
         in
         ignore
           (Aliasres.Ally.trial sampler (Ipv4.of_string_exn "10.0.0.1")
              (Ipv4.of_string_exn "10.0.0.2") ~samples:4)))

let micro () =
  banner "Micro-benchmarks (bechamel)";
  (* Force shared state before timing. *)
  ignore (Lazy.force micro_env);
  let tests =
    [ test_ptrie_lpm; test_targets; test_bgp_route; test_forwarding_path;
      test_traceroute; test_heuristics; test_rel_infer; test_ally ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "%-24s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-24s (no estimate)\n%!" name)
        analyzed)
    tests

let () =
  experiments ();
  micro ();
  banner "done"
