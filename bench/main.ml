(* Benchmark harness: regenerates every table and figure from the paper's
   evaluation (one section per artifact), times each experiment's
   wall-clock, compares the multi-VP experiments at 1 vs N domains, and
   times the pipeline stages with bechamel.

   Scale with BDRMAP_BENCH_SCALE (default 1.0 = paper-sized scenarios;
   0.1-0.3 for a quick pass). Worker domains with BDRMAP_JOBS (default:
   Domain.recommended_domain_count). Every number also lands in a
   machine-readable BENCH.json (path override: BDRMAP_BENCH_OUT) so the
   perf trajectory can be tracked across changes. *)

open Bechamel
open Toolkit

let scale =
  match Sys.getenv_opt "BDRMAP_BENCH_SCALE" with
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f > 0.0 -> f
    | _ -> 1.0)
  | None -> 1.0

let jobs =
  match Sys.getenv_opt "BDRMAP_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> max 1 (Domain.recommended_domain_count ()))
  | None -> max 1 (Domain.recommended_domain_count ())

let banner title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

(* Wall-clock + GC accounting per timed region, collected for
   BENCH.json. GC deltas come from [Gc.quick_stat] (no heap walk), so
   the measurement itself stays cheap; allocation volume is what the
   snapshot/plan sharing is supposed to cut, so it is tracked next to
   wall time. *)
type row = {
  r_name : string;
  r_wall_s : float;
  r_minor_words : float;
  r_major_words : float;
  r_heap_words : float;  (* resident major-heap words when the region ends *)
  r_compactions : int;
}

let wall_times : row list ref = ref []

let timed name f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  wall_times :=
    { r_name = name;
      r_wall_s = dt;
      r_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      r_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      r_heap_words = float_of_int g1.Gc.heap_words;
      r_compactions = g1.Gc.compactions - g0.Gc.compactions }
    :: !wall_times;
  Printf.printf "[%s: %.2fs]\n%!" name dt;
  r

let experiments pool =
  banner
    (Printf.sprintf "bdrmap evaluation reproduction (scale %.2f, %d domains)" scale
       jobs);
  banner "Table 1 (5.7): BGP coverage and heuristic breakdown";
  timed "table1" (fun () ->
      Experiments.Exp_table1.print Format.std_formatter
        (Experiments.Exp_table1.run ~scale ()));
  banner "5.6: validation against ground truth";
  timed "validation" (fun () ->
      Experiments.Exp_validation.print Format.std_formatter
        (Experiments.Exp_validation.run ~scale ()));
  banner "Figure 14: border router / next-hop AS diversity";
  timed "fig14" (fun () ->
      Experiments.Exp_fig14.print Format.std_formatter
        (Experiments.Exp_fig14.run ~scale ?pool ()));
  banner "Figure 15: marginal utility of VPs";
  timed "fig15" (fun () ->
      Experiments.Exp_fig15.print Format.std_formatter
        (Experiments.Exp_fig15.run ~scale ?pool ()));
  banner "Figure 16: VP geography vs observed links";
  timed "fig16" (fun () ->
      Experiments.Exp_fig16.print Format.std_formatter
        (Experiments.Exp_fig16.run ~scale ?pool ()));
  banner "5.3: run-time and stop-set ablation";
  timed "runtime" (fun () ->
      Experiments.Exp_runtime.print Format.std_formatter
        (Experiments.Exp_runtime.run ~scale ()));
  banner "5.8: resource-limited deployment";
  timed "resource" (fun () ->
      match Experiments.Exp_resource.run ~scale ?pool () with
      | Ok t -> Experiments.Exp_resource.print Format.std_formatter t
      | Error e -> failwith (Experiments.Exp_resource.error_to_string e));
  banner "Baseline comparison (3)";
  timed "baselines" (fun () ->
      Experiments.Exp_baselines.print Format.std_formatter
        (Experiments.Exp_baselines.run ~scale ()));
  banner "Design ablations";
  timed "ablation" (fun () ->
      Experiments.Exp_ablation.print Format.std_formatter
        (Experiments.Exp_ablation.run ~scale ()))

(* Robustness sweep: accuracy under injected measurement faults, one row
   per impairment level. Rows are kept for BENCH.json so accuracy-vs-
   impairment is tracked across changes like wall-clock is. *)
let robustness_rows : Experiments.Exp_robustness.row list ref = ref []

let robustness () =
  banner "Robustness: accuracy under injected measurement faults";
  timed "robustness" (fun () ->
      let rows = Experiments.Exp_robustness.run ~scale () in
      robustness_rows := rows;
      Experiments.Exp_robustness.print Format.std_formatter rows)

(* Adversarial corpus: accuracy on the named hostile worlds, one row
   per scenario with its recorded floor. check_bench fails the build if
   any scenario drops below its floor — inference quality is gated the
   same way wall-clock regressions are. *)
let corpus_rows : Experiments.Exp_corpus.row list ref = ref []

let corpus () =
  banner "Adversarial corpus: accuracy floors on hostile worlds";
  timed "corpus" (fun () ->
      let rows = Experiments.Exp_corpus.run ~scale () in
      corpus_rows := rows;
      Experiments.Exp_corpus.print Format.std_formatter rows)

(* Temporal churn: each event class forced onto a fixed scale-1 world
   (independent of BDRMAP_BENCH_SCALE so the rows are comparable across
   runs), timing the evolved world's full re-freeze (scratch snapshot +
   scratch forwarding plan) against the incremental path (Bgp.refreeze
   + Forwarding.patch). Steps chain on one world, each patching the
   previous snapshot, like the epoch loop does. All freezes here count
   under a scratch counter so the builds-per-sweep accounting gate
   stays meaningful. check_bench holds the single-link classes to a
   >= 5x speedup — the headline contract of the incremental path. *)
type churn_row = {
  c_name : string;
  c_full_wall_s : float;
  c_incr_wall_s : float;
  c_dirty : int;
  c_total : int;
  c_full_minor : float;
  c_full_major : float;
  c_incr_minor : float;
  c_incr_major : float;
}

let churn_rows : churn_row list ref = ref []

let churn_bench () =
  banner "Temporal churn: full re-freeze vs incremental (scale 1)";
  let module Evolve = Topogen.Evolve in
  let module Bgp = Routing.Bgp in
  let module Fwd = Routing.Forwarding in
  let fresh_bgp (w : Topogen.Gen.world) =
    Bgp.create w.Topogen.Gen.net w.Topogen.Gen.rels_truth
      ~originated:(Topogen.Gen.originated w) ~selective:w.Topogen.Gen.selective
  in
  let timed_gc f =
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    ( r,
      dt,
      g1.Gc.minor_words -. g0.Gc.minor_words,
      g1.Gc.major_words -. g0.Gc.major_words )
  in
  let w0 =
    Topogen.Gen.generate (Topogen.Scenario.small_access ~scale:1.0 ())
  in
  let world = ref w0 in
  let snap =
    ref (Bgp.freeze ~counter:"routing.snapshot.scratch_builds" (fresh_bgp w0))
  in
  let plan =
    ref
      (Fwd.freeze ~egress_for:w0.Topogen.Gen.siblings
         (Fwd.create w0.Topogen.Gen.net (Bgp.of_snapshot !snap)))
  in
  let force_kind kind w =
    let rec go seed =
      if seed > 50 then None
      else
        match Evolve.force ~seed kind w with
        | Some r -> Some r
        | None -> go (seed + 1)
    in
    go 1
  in
  List.iter
    (fun kind ->
      let label = Evolve.kind_label kind in
      match force_kind kind !world with
      | None -> Printf.printf "%-14s no eligible site; skipped\n%!" label
      | Some (w', te) ->
        world := w';
        let churn = Bgp.churn_of_events [ te ] in
        let scratch_plan, fw, fmin, fmaj =
          timed_gc (fun () ->
              let s =
                Bgp.freeze ~counter:"routing.snapshot.scratch_builds"
                  (fresh_bgp w')
              in
              let p =
                Fwd.freeze ~egress_for:w'.Topogen.Gen.siblings
                  (Fwd.create w'.Topogen.Gen.net (Bgp.of_snapshot s))
              in
              (s, p))
        in
        let (patched, stats, pplan), iw, imin, imaj =
          timed_gc (fun () ->
              let s, stats = Bgp.refreeze (fresh_bgp w') ~old:!snap churn in
              let p =
                Fwd.patch ~egress_for:w'.Topogen.Gen.siblings
                  (Fwd.create w'.Topogen.Gen.net (Bgp.of_snapshot s))
                  ~old:!plan ~churn ~dirty:stats.Bgp.rf_dirty_prefixes
              in
              (s, stats, p))
        in
        (let sscratch, pscratch = scratch_plan in
         (match Bgp.Snapshot.equal sscratch patched with
         | Ok () -> ()
         | Error m ->
           Printf.printf "WARNING: %s incremental snapshot diverged: %s\n%!"
             label m);
         match Fwd.plan_equal ~scratch:pscratch ~patched:pplan with
         | Ok () -> ()
         | Error m ->
           Printf.printf "WARNING: %s incremental plan diverged: %s\n%!" label
             m);
        snap := patched;
        plan := pplan;
        Printf.printf
          "%-14s full %.4fs  incremental %.4fs  (%.1fx, %d/%d dirty)\n%!"
          label fw iw
          (fw /. Float.max 1e-9 iw)
          stats.Bgp.rf_dirty stats.Bgp.rf_total;
        churn_rows :=
          { c_name = label;
            c_full_wall_s = fw;
            c_incr_wall_s = iw;
            c_dirty = stats.Bgp.rf_dirty;
            c_total = stats.Bgp.rf_total;
            c_full_minor = fmin;
            c_full_major = fmaj;
            c_incr_minor = imin;
            c_incr_major = imaj
          }
          :: !churn_rows)
    Evolve.all_kinds

(* Longitudinal drift: the epoch loop at a fixed scale 0.3, one row per
   epoch with inferred-map accuracy against the evolved ground truth.
   check_bench holds every epoch's link accuracy above the recorded
   floor — churn must not quietly erode inference quality. *)
let longitudinal_links_floor = 60.0
let longitudinal_rows : Experiments.Exp_longitudinal.row list ref = ref []

let longitudinal () =
  banner "Longitudinal: border-map drift under temporal churn (scale 0.3)";
  timed "longitudinal" (fun () ->
      let rows = Experiments.Exp_longitudinal.run ~scale:0.3 () in
      longitudinal_rows := rows;
      Experiments.Exp_longitudinal.print Format.std_formatter rows)

(* The multi-VP experiments again, serial vs pooled, on a warm
   environment (the world/engine cache makes the comparison about the
   per-VP sweep, not world generation). *)
let parallel_comparison pool =
  banner (Printf.sprintf "Multi-VP wall-clock: 1 vs %d domains" jobs);
  timed "fig14-j1" (fun () -> ignore (Experiments.Exp_fig14.run ~scale ()));
  timed (Printf.sprintf "fig14-j%d" jobs) (fun () ->
      ignore (Experiments.Exp_fig14.run ~scale ?pool ()));
  timed "fig15-j1" (fun () -> ignore (Experiments.Exp_fig15.run ~scale ()));
  timed (Printf.sprintf "fig15-j%d" jobs) (fun () ->
      ignore (Experiments.Exp_fig15.run ~scale ?pool ()))

(* Cold vs warm persistent run store on the same experiment: the cold
   pass computes every per-VP artifact and checkpoints it; the warm
   pass deserializes instead of recomputing. Both run against the warm
   world/engine cache, so the delta is the store's, not generation's.
   fig16 exercises the crossing-link sweep cache, resource the full
   per-VP pipeline snapshot path. The store's hit/miss/byte counters
   land in the metrics block below. *)
let store_comparison pool =
  banner "Persistent run store: cold vs warm";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bdrmap-bench-store-%d" (Unix.getpid ()))
  in
  let store = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      ignore (Store.gc ~all:true store : Store.gc_stats);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      timed "fig16-cold-store" (fun () ->
          ignore (Experiments.Exp_fig16.run ~scale ?pool ~store ()));
      timed "fig16-warm-store" (fun () ->
          ignore (Experiments.Exp_fig16.run ~scale ?pool ~store ()));
      timed "resource-cold-store" (fun () ->
          ignore (Experiments.Exp_resource.run ~scale ?pool ~store ()));
      timed "resource-warm-store" (fun () ->
          ignore (Experiments.Exp_resource.run ~scale ?pool ~store ())))

(* Cold vs warm shared routing snapshot on a full multi-VP pipeline
   sweep: the cold pass freezes inside [execute_all]; the warm pass is
   handed a prebuilt snapshot + plan, so its rows isolate the pure
   per-VP cost the sharing leaves behind. The freeze itself is timed
   separately. *)
let snapshot_comparison () =
  banner "Shared routing snapshot: cold vs warm";
  let env =
    Experiments.Exp_common.make (Topogen.Scenario.small_access ~scale ())
  in
  let w = env.Experiments.Exp_common.world in
  let inputs = env.Experiments.Exp_common.inputs in
  let vps = w.Topogen.Gen.vps in
  let n_vps = List.length vps in
  let shared =
    timed "snapshot-freeze" (fun () -> Bdrmap.Pipeline.freeze_routing w)
  in
  timed "sweep-cold-snapshot" (fun () ->
      ignore (Bdrmap.Pipeline.execute_all w inputs ~vps));
  timed "sweep-warm-snapshot" (fun () ->
      ignore (Bdrmap.Pipeline.execute_all ~shared w inputs ~vps));
  match !wall_times with
  | warm :: cold :: _ ->
    Printf.printf "per-VP (%d VPs): cold %.3fs, warm %.3fs\n%!" n_vps
      (cold.r_wall_s /. float_of_int n_vps)
      (warm.r_wall_s /. float_of_int n_vps)
  | _ -> ()

(* Packed snapshot at a fixed scale-3 world (10x-class), independent of
   BDRMAP_BENCH_SCALE so the rows are comparable across runs: freeze
   wall-clock + resident words, then a cold and a warm full
   (prefix x ASN) query sweep over the packed words. The warm sweep
   reads only Bigarray words through the zero-allocation slot layer, so
   check_bench holds its GC major-words delta to a near-zero budget —
   the regression gate for the arena staying GC-invisible. *)
let scale3_snapshot () =
  banner "Packed routing snapshot at scale 3";
  let w =
    timed "snapshot3-world" (fun () ->
        Topogen.Gen.generate (Topogen.Scenario.small_access ~scale:3.0 ()))
  in
  let shared =
    timed "snapshot3-freeze" (fun () -> Bdrmap.Pipeline.freeze_routing w)
  in
  let snap = shared.Bdrmap.Pipeline.snapshot in
  let module S = Routing.Bgp.Snapshot in
  let np = S.prefix_count snap and na = S.asn_count snap in
  Printf.printf "snapshot: %d prefixes x %d ASNs, arena %d words\n%!" np na
    (S.arena_length snap);
  let sweep () =
    let total = ref 0 in
    for pslot = 0 to np - 1 do
      for aslot = 0 to na - 1 do
        let word = S.word snap ~pslot ~aslot in
        if word <> 0 then total := !total + S.word_dist word
      done
    done;
    !total
  in
  let cold = timed "snapshot3-query-sweep" sweep in
  let warm = timed "snapshot3-query-sweep-warm" sweep in
  if cold <> warm then
    Printf.printf "WARNING: sweep checksum drifted (%d vs %d)\n%!" cold warm;
  Printf.printf "query sweep checksum %d over %d words\n%!" warm (np * na)

(* Query-server throughput over the merged border map, at a fixed
   scale-0.15 small_access world (independent of BDRMAP_BENCH_SCALE so
   the rows are comparable across runs): the all-VP inference is
   merged, packed into a map artifact, indexed into a query map, and
   the load generator drives batched owner lookups over a Unix-domain
   socket against a server on its own domain. The batch-512 row is the
   throughput headline; the batch-1 row is per-frame round-trip
   latency. check_bench gates sustained qps, p50 <= p99 ordering, and
   the steady-state minor-GC words per query staying near zero — the
   regression gate for the query hot loop staying allocation-free. *)
let serve_rows : Serve.Bench_load.result list ref = ref []

let serve_bench () =
  banner "Query server: batched owner lookups over the merged border map";
  let qmap =
    timed "serve-build" (fun () ->
        let w =
          Topogen.Gen.generate (Topogen.Scenario.small_access ~scale:0.15 ())
        in
        let shared = Bdrmap.Pipeline.freeze_routing w in
        let snapshot = shared.Bdrmap.Pipeline.snapshot in
        let bgp = Routing.Bgp.of_snapshot snapshot in
        let inputs = Bdrmap.Pipeline.inputs_of_world w bgp in
        let vps = w.Topogen.Gen.vps in
        let runs = Bdrmap.Pipeline.execute_all ~shared w inputs ~vps in
        let merged =
          Bdrmap.Aggregate.merge_runs
            (List.map2
               (fun (vp : Topogen.Gen.vp) (r : Bdrmap.Pipeline.run) ->
                 ( vp.Topogen.Gen.vp_name,
                   r.Bdrmap.Pipeline.graph,
                   r.Bdrmap.Pipeline.inference ))
               vps runs)
        in
        let mapfile =
          Bdrmap.Mapfile.make ~host_asns:w.Topogen.Gen.siblings ~bgp merged
        in
        Serve.Qmap.build ~snapshot mapfile)
  in
  List.iter
    (fun batch ->
      let r = Serve.Bench_load.run ~batch ~seconds:0.5 qmap in
      Serve.Bench_load.print Format.std_formatter r;
      serve_rows := r :: !serve_rows)
    [ 512; 1 ]

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the pipeline stages.                            *)

module Gen = Topogen.Gen
open Netcore

let micro_env =
  lazy
    (let world = Gen.generate Topogen.Scenario.tiny in
     let bgp, fwd, engine, inputs = Bdrmap.Pipeline.setup world in
     let vp = List.hd world.vps in
     let run = Bdrmap.Pipeline.execute engine inputs ~vp in
     (world, bgp, fwd, engine, inputs, vp, run))

let test_ptrie_lpm =
  Test.make ~name:"ptrie-lpm"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, _ = Lazy.force micro_env in
         ignore (Bgpdata.Rib.origin_asns inputs.rib (Ipv4.of_string_exn "1.40.0.77"))))

let test_targets =
  Test.make ~name:"target-blocks"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, _ = Lazy.force micro_env in
         ignore (Bdrmap.Targets.blocks ~rib:inputs.rib ~vp_asns:inputs.vp_asns)))

let test_bgp_route =
  Test.make ~name:"bgp-route-lookup"
    (Staged.stage (fun () ->
         let _, bgp, _, _, _, _, _ = Lazy.force micro_env in
         let prefixes = Routing.Bgp.prefixes bgp in
         let p = List.nth prefixes (List.length prefixes / 2) in
         ignore (Routing.Bgp.route bgp 64500 p)))

let test_forwarding_path =
  Test.make ~name:"forwarding-path"
    (Staged.stage (fun () ->
         let _, _, fwd, _, _, vp, _ = Lazy.force micro_env in
         ignore
           (Routing.Forwarding.path fwd ~src_rid:vp.Gen.vp_rid
              ~dst:(Ipv4.of_string_exn "1.40.0.77") ())))

let test_traceroute =
  Test.make ~name:"engine-traceroute"
    (Staged.stage (fun () ->
         let _, _, _, engine, _, vp, _ = Lazy.force micro_env in
         ignore (Probesim.Engine.traceroute engine ~vp ~dst:(Ipv4.of_string_exn "1.40.0.77") ())))

let test_heuristics =
  Test.make ~name:"heuristics-infer"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, run = Lazy.force micro_env in
         ignore
           (Bdrmap.Heuristics.infer run.Bdrmap.Pipeline.cfg run.Bdrmap.Pipeline.ip2as
              ~rels:inputs.rels run.Bdrmap.Pipeline.graph run.Bdrmap.Pipeline.collection)))

let test_rel_infer =
  Test.make ~name:"rel-infer"
    (Staged.stage (fun () ->
         let _, _, _, _, inputs, _, _ = Lazy.force micro_env in
         ignore (Bgpdata.Rel_infer.infer (Bgpdata.Rib.all_paths inputs.rib))))

let test_ally =
  Test.make ~name:"ally-trial"
    (Staged.stage (fun () ->
         let c = ref 0 in
         let sampler _ =
           incr c;
           Some (!c land 0xFFFF)
         in
         ignore
           (Aliasres.Ally.trial sampler (Ipv4.of_string_exn "10.0.0.1")
              (Ipv4.of_string_exn "10.0.0.2") ~samples:4)))

let test_aggregate_merge =
  Test.make ~name:"aggregate-merge"
    (Staged.stage (fun () ->
         let _, _, _, _, _, vp, run = Lazy.force micro_env in
         let vl =
           Bdrmap.Aggregate.of_run vp.Gen.vp_name run.Bdrmap.Pipeline.graph
             run.Bdrmap.Pipeline.inference
         in
         ignore (Bdrmap.Aggregate.merge [ vl; { vl with vp_name = "vp2" } ])))

(* Micro-benchmark estimates collected for BENCH.json: (name, ns/run). *)
let micro_times : (string * float) list ref = ref []

(* Metrics snapshot for BENCH.json, taken after the experiment sweeps
   and before the micro-benchmarks — the micro loops would both inflate
   the pipeline counters and pay the recording cost inside the timed
   region. *)
let obs_snapshot : (string * Obs.Metrics.value) list ref = ref []

let snapshot_obs () =
  obs_snapshot := Obs.Metrics.collect ();
  Obs.Metrics.disable ()

let micro () =
  banner "Micro-benchmarks (bechamel)";
  (* Force shared state before timing. *)
  ignore (Lazy.force micro_env);
  let tests =
    [ test_ptrie_lpm; test_targets; test_bgp_route; test_forwarding_path;
      test_traceroute; test_heuristics; test_rel_infer; test_ally;
      test_aggregate_merge ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            micro_times := (name, est) :: !micro_times;
            Printf.printf "%-24s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-24s (no estimate)\n%!" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* BENCH.json: the machine-readable record of this run.                *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json path =
  let oc = open_out path in
  let item fmt (name, v) = Printf.sprintf fmt (json_escape name) v in
  let block key fmt entries =
    Printf.sprintf "  %S: [\n%s\n  ]" key
      (String.concat ",\n" (List.map (fun e -> "    " ^ item fmt e) entries))
  in
  let experiments_block =
    let row r =
      Printf.sprintf
        "    {\"name\": \"%s\", \"wall_s\": %.6f, \"gc_minor_words\": %.0f, \
         \"gc_major_words\": %.0f, \"gc_heap_words\": %.0f, \
         \"gc_compactions\": %d}"
        (json_escape r.r_name) r.r_wall_s r.r_minor_words r.r_major_words
        r.r_heap_words r.r_compactions
    in
    Printf.sprintf "  \"experiments\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row (List.rev !wall_times)))
  in
  let robustness_block =
    let row (r : Experiments.Exp_robustness.row) =
      Printf.sprintf
        "    {\"intensity\": %g, \"links_pct\": %.2f, \"routers_pct\": %.2f, \
         \"coverage_pct\": %.2f, \"probes\": %d, \"overhead_pct\": %.2f}"
        r.Experiments.Exp_robustness.intensity
        r.Experiments.Exp_robustness.links.Bdrmap.Validate.pct_correct
        r.Experiments.Exp_robustness.routers.Bdrmap.Validate.pct_correct
        r.Experiments.Exp_robustness.coverage_pct
        r.Experiments.Exp_robustness.probes
        r.Experiments.Exp_robustness.overhead_pct
    in
    Printf.sprintf "  \"robustness\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row !robustness_rows))
  in
  let corpus_block =
    let row (r : Experiments.Exp_corpus.row) =
      Printf.sprintf
        "    {\"scenario\": \"%s\", \"links_pct\": %.2f, \"links_floor\": %.2f, \
         \"routers_pct\": %.2f, \"routers_floor\": %.2f, \"coverage_pct\": %.2f, \
         \"probes\": %d}"
        (json_escape r.Experiments.Exp_corpus.name)
        r.Experiments.Exp_corpus.links.Bdrmap.Validate.pct_correct
        r.Experiments.Exp_corpus.link_floor
        r.Experiments.Exp_corpus.routers.Bdrmap.Validate.pct_correct
        r.Experiments.Exp_corpus.router_floor
        r.Experiments.Exp_corpus.coverage_pct
        r.Experiments.Exp_corpus.probes
    in
    Printf.sprintf "  \"corpus\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row !corpus_rows))
  in
  let stages_block =
    let row (st : Obs.Manifest.stage) =
      Printf.sprintf
        "    {\"stage\": \"%s\", \"count\": %d, \"wall_s\": %.6f, \"sim_s\": %.6f, \
         \"gc_minor_words\": %d, \"gc_major_words\": %d, \"gc_compactions\": %d}"
        (json_escape st.Obs.Manifest.st_name) st.Obs.Manifest.st_count
        st.Obs.Manifest.st_wall_s st.Obs.Manifest.st_sim_s
        st.Obs.Manifest.st_minor_words st.Obs.Manifest.st_major_words
        st.Obs.Manifest.st_compactions
    in
    Printf.sprintf "  \"stages\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row (Obs.Manifest.stages !obs_snapshot)))
  in
  let serve_block =
    let row (r : Serve.Bench_load.result) =
      Printf.sprintf
        "    {\"name\": \"owner-batch%d\", \"batch\": %d, \"queries\": %d, \
         \"qps\": %.0f, \"rtt_p50_us\": %.2f, \"rtt_p99_us\": %.2f, \
         \"minor_words_per_query\": %.4f, \"wall_s\": %.6f}"
        r.Serve.Bench_load.batch r.Serve.Bench_load.batch
        r.Serve.Bench_load.queries r.Serve.Bench_load.qps
        r.Serve.Bench_load.rtt_p50_us r.Serve.Bench_load.rtt_p99_us
        r.Serve.Bench_load.minor_words_per_query r.Serve.Bench_load.wall_s
    in
    Printf.sprintf "  \"serve\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row (List.rev !serve_rows)))
  in
  let metrics_block =
    let row (name, v) =
      match v with
      | Obs.Metrics.Counter n ->
        Printf.sprintf "    {\"name\": \"%s\", \"total\": %d}" (json_escape name) n
      | Obs.Metrics.Gauge g ->
        Printf.sprintf "    {\"name\": \"%s\", \"max\": %g}" (json_escape name) g
      | Obs.Metrics.Histogram h ->
        (* Derived percentiles ride along so run-diff tooling can gate
           on tail latency without re-deriving bucket math. *)
        let q =
          match Obs.Summary.of_hist h with
          | None -> ""
          | Some q ->
            Printf.sprintf ", \"p50\": %g, \"p90\": %g, \"p99\": %g"
              q.Obs.Summary.p50 q.Obs.Summary.p90 q.Obs.Summary.p99
        in
        Printf.sprintf "    {\"name\": \"%s\", \"count\": %d, \"sum\": %g%s}"
          (json_escape name) h.Obs.Metrics.h_count h.Obs.Metrics.h_sum q
    in
    Printf.sprintf "  \"metrics\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row !obs_snapshot))
  in
  let churn_block =
    let row r =
      Printf.sprintf
        "    {\"name\": \"%s\", \"full_wall_s\": %.6f, \"incr_wall_s\": %.6f, \
         \"speedup\": %.2f, \"dirty\": %d, \"total_pfx\": %d, \
         \"full_minor_words\": %.0f, \"full_major_words\": %.0f, \
         \"incr_minor_words\": %.0f, \"incr_major_words\": %.0f}"
        (json_escape r.c_name) r.c_full_wall_s r.c_incr_wall_s
        (r.c_full_wall_s /. Float.max 1e-9 r.c_incr_wall_s)
        r.c_dirty r.c_total r.c_full_minor r.c_full_major r.c_incr_minor
        r.c_incr_major
    in
    Printf.sprintf "  \"churn\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row (List.rev !churn_rows)))
  in
  let longitudinal_block =
    let row (r : Experiments.Exp_longitudinal.row) =
      Printf.sprintf
        "    {\"epoch\": %d, \"time_s\": %g, \"dirty\": %d, \"total_pfx\": %d, \
         \"borders\": %d, \"links_pct\": %.2f, \"links_floor\": %.2f, \
         \"routers_pct\": %.2f, \"drift_pct\": %.2f}"
        r.Experiments.Exp_longitudinal.epoch
        r.Experiments.Exp_longitudinal.time
        r.Experiments.Exp_longitudinal.dirty
        r.Experiments.Exp_longitudinal.total_pfx
        r.Experiments.Exp_longitudinal.borders
        r.Experiments.Exp_longitudinal.links.Bdrmap.Validate.pct_correct
        longitudinal_links_floor
        r.Experiments.Exp_longitudinal.routers.Bdrmap.Validate.pct_correct
        r.Experiments.Exp_longitudinal.drift_pct
    in
    Printf.sprintf "  \"longitudinal\": [\n%s\n  ]"
      (String.concat ",\n" (List.map row !longitudinal_rows))
  in
  Printf.fprintf oc
    "{\n  \"schema\": \"bdrmap-bench/10\",\n  \"scale\": %g,\n  \"domains\": %d,\n%s,\n%s,\n%s,\n%s,\n%s,\n%s,\n%s,\n%s,\n%s\n}\n"
    scale jobs experiments_block robustness_block corpus_block churn_block
    longitudinal_block serve_block stages_block metrics_block
    (block "micro" "{\"name\": \"%s\", \"ns_per_run\": %.1f}" (List.rev !micro_times));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  (* Stage spans and pipeline counters accumulate across the whole
     experiment sweep and land in BENCH.json next to the wall-clock
     numbers (their merged totals are pool-size independent). *)
  Obs.Metrics.enable ();
  let finish () =
    let out = Option.value ~default:"BENCH.json" (Sys.getenv_opt "BDRMAP_BENCH_OUT") in
    write_bench_json out;
    banner "done"
  in
  if jobs = 1 then begin
    experiments None;
    robustness ();
    corpus ();
    churn_bench ();
    longitudinal ();
    store_comparison None;
    snapshot_comparison ();
    scale3_snapshot ();
    serve_bench ();
    snapshot_obs ();
    micro ();
    finish ()
  end
  else
    Netcore.Pool.with_pool ~domains:jobs (fun pool ->
        let pool = Some pool in
        experiments pool;
        robustness ();
        corpus ();
        churn_bench ();
        longitudinal ();
        parallel_comparison pool;
        store_comparison pool;
        snapshot_comparison ();
        scale3_snapshot ();
        serve_bench ();
        snapshot_obs ();
        micro ();
        finish ())
